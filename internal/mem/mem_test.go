package mem

import (
	"testing"
	"testing/quick"

	"c3/internal/sim"
)

func TestAddrLine(t *testing.T) {
	cases := []struct {
		addr Addr
		line LineAddr
		word int
	}{
		{0, 0, 0},
		{8, 0, 1},
		{63, 0, 7},
		{64, 64, 0},
		{0x1000 + 24, 0x1000, 3},
	}
	for _, c := range cases {
		if got := c.addr.Line(); got != c.line {
			t.Errorf("Addr(%#x).Line() = %#x, want %#x", uint64(c.addr), uint64(got), uint64(c.line))
		}
		if got := c.addr.WordIndex(); got != c.word {
			t.Errorf("Addr(%#x).WordIndex() = %d, want %d", uint64(c.addr), got, c.word)
		}
	}
}

func TestLinePropertyRoundTrip(t *testing.T) {
	// Property: the line address plus 8*wordIndex recovers the word-aligned
	// address for any word-aligned input.
	f := func(a uint64) bool {
		addr := Addr(a &^ 7)
		return Addr(uint64(addr.Line())+uint64(addr.WordIndex())*8) == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLineContainmentProperty(t *testing.T) {
	// Property: every byte address within a line maps to the same line.
	f := func(a uint64, off uint8) bool {
		base := Addr(a).Line()
		return (base.Addr() + Addr(off%LineBytes)).Line() == base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDataWords(t *testing.T) {
	var d Data
	d.SetWord(3, 42)
	if d.Word(3) != 42 || d.Word(0) != 0 {
		t.Fatalf("word write/read mismatch: %v", d)
	}
}

func TestDRAMReadAfterWrite(t *testing.T) {
	var k sim.Kernel
	d := NewDRAM(&k, DefaultDRAMConfig())
	addr := LineAddr(0x2000)
	var want Data
	want.SetWord(1, 99)

	var got Data
	wrote := false
	d.Write(addr, want, func() { wrote = true })
	k.Run(nil)
	if !wrote {
		t.Fatal("write completion never fired")
	}
	d.Read(addr, func(data Data) { got = data })
	k.Run(nil)
	if got != want {
		t.Fatalf("read %v, want %v", got, want)
	}
	if d.Reads != 1 || d.Writes != 1 {
		t.Fatalf("counters = %d/%d, want 1/1", d.Reads, d.Writes)
	}
}

func TestDRAMUnwrittenReadsZero(t *testing.T) {
	var k sim.Kernel
	d := NewDRAM(&k, DefaultDRAMConfig())
	var got Data
	d.Read(0x9000, func(data Data) { got = data })
	k.Run(nil)
	if got != (Data{}) {
		t.Fatalf("unwritten line reads %v, want zero", got)
	}
}

func TestDRAMLatency(t *testing.T) {
	var k sim.Kernel
	d := NewDRAM(&k, DRAMConfig{AccessLatency: 20, BytesPerCycle: 64})
	var doneAt sim.Time
	d.Read(0, func(Data) { doneAt = k.Now() })
	k.Run(nil)
	// occupancy = 64/64 = 1 cycle, + 20 access = 21.
	if doneAt != 21 {
		t.Fatalf("read completed at %d, want 21", doneAt)
	}
}

func TestDRAMChannelSerialization(t *testing.T) {
	var k sim.Kernel
	d := NewDRAM(&k, DRAMConfig{AccessLatency: 10, BytesPerCycle: 32}) // 2-cycle occupancy
	var times []sim.Time
	for i := 0; i < 3; i++ {
		d.Read(LineAddr(uint64(i)*64), func(Data) { times = append(times, k.Now()) })
	}
	k.Run(nil)
	// Transfers serialize on the channel: completion at 12, 14, 16.
	want := []sim.Time{12, 14, 16}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("completions %v, want %v", times, want)
		}
	}
}

func TestDRAMPokePeek(t *testing.T) {
	var k sim.Kernel
	d := NewDRAM(&k, DefaultDRAMConfig())
	var v Data
	v.SetWord(0, 7)
	d.Poke(0x40, v)
	if d.Peek(0x40) != v {
		t.Fatal("Peek after Poke mismatch")
	}
}
