package mem

import (
	"math/rand"
	"strings"
	"testing"

	"c3/internal/sim"
)

func dumpDRAM(d *DRAM) string {
	var b strings.Builder
	d.DumpState(&b)
	return b.String()
}

// TestDRAMCOWIsolation drives random interleaved Pokes on a DRAM and
// its clone: after the clone, no write on one side may show through the
// other's Peek or DumpState.
func TestDRAMCOWIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 50; round++ {
		k := &sim.Kernel{}
		p := NewDRAM(k, DefaultDRAMConfig())
		for i := 0; i < 4; i++ {
			var d Data
			d.SetWord(0, uint64(rng.Intn(100)))
			p.Poke(LineAddr(i*LineBytes), d)
		}
		c := p.Clone(k)
		if !p.Shared() || !c.Shared() {
			t.Fatal("store not shared right after Clone")
		}
		if dumpDRAM(p) != dumpDRAM(c) {
			t.Fatal("clone dumps differently from parent")
		}
		for step := 0; step < 16; step++ {
			m, other := p, c
			if rng.Intn(2) == 1 {
				m, other = c, p
			}
			before := dumpDRAM(other)
			var d Data
			d.SetWord(1, uint64(step+1))
			m.Poke(LineAddr(rng.Intn(6)*LineBytes), d)
			if dumpDRAM(other) != before {
				t.Fatalf("round %d step %d: Poke leaked to the other DRAM", round, step)
			}
		}
	}
}

// TestDRAMCOWReadsDoNotMaterialize: Peek and DumpState on a fresh clone
// must keep the store shared; the first write unshares it.
func TestDRAMCOWReadsDoNotMaterialize(t *testing.T) {
	k := &sim.Kernel{}
	p := NewDRAM(k, DefaultDRAMConfig())
	var d Data
	d.SetWord(0, 42)
	p.Poke(0, d)
	c := p.Clone(k)

	_ = c.Peek(0)
	_ = dumpDRAM(c)
	if !c.Shared() {
		t.Fatal("read-only access materialized the store")
	}
	c.Poke(LineAddr(LineBytes), d)
	if c.Shared() || p.Shared() {
		t.Fatal("write left the store shared")
	}
	if p.Peek(LineAddr(LineBytes)) != (Data{}) {
		t.Fatal("clone write visible in parent")
	}
}

// TestDRAMCOWTimedWrite: the timed Write path must also copy-on-write.
func TestDRAMCOWTimedWrite(t *testing.T) {
	k := &sim.Kernel{}
	p := NewDRAM(k, DefaultDRAMConfig())
	c := p.Clone(k)
	var d Data
	d.SetWord(0, 7)
	done := false
	p.Write(0, d, func() { done = true })
	k.Run(nil)
	if !done {
		t.Fatal("write never completed")
	}
	if p.Peek(0) != d {
		t.Fatal("write lost")
	}
	if c.Peek(0) != (Data{}) {
		t.Fatal("timed write leaked to the clone")
	}
}
