package mem

import (
	"fmt"
	"io"
	"sort"

	"c3/internal/sim"
)

// DRAMConfig describes the memory device backing the CXL pool
// (Table III: DDR5, 4400 MT/s, 1 channel, 10 ns device latency).
type DRAMConfig struct {
	// AccessLatency is the fixed device access latency.
	AccessLatency sim.Time
	// BytesPerCycle is the channel bandwidth; a request occupies the
	// channel for LineBytes/BytesPerCycle cycles, serializing bursts.
	BytesPerCycle float64
}

// DefaultDRAMConfig matches Table III: 10 ns access, one DDR5-4400
// channel (4400 MT/s x 8 B = 35.2 GB/s; at 2 GHz that is 17.6 B/cycle).
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{AccessLatency: sim.NS(10), BytesPerCycle: 17.6}
}

// DRAM is a latency/bandwidth model of the memory device, plus the
// authoritative storage for line data not currently owned by any cache.
type DRAM struct {
	k     *sim.Kernel
	cfg   DRAMConfig
	store map[LineAddr]Data
	// busyUntil models single-channel serialization.
	busyUntil sim.Time

	// Reads and Writes count completed accesses, for stats.
	Reads, Writes uint64
}

// NewDRAM returns a DRAM attached to kernel k. Unwritten lines read as
// zero, like freshly initialized memory.
func NewDRAM(k *sim.Kernel, cfg DRAMConfig) *DRAM {
	if cfg.BytesPerCycle <= 0 {
		cfg.BytesPerCycle = 17.6
	}
	return &DRAM{k: k, cfg: cfg, store: make(map[LineAddr]Data)}
}

// Clone returns a deep copy of the device attached to kernel k, for
// model-checker state snapshots. In-flight accesses live as kernel
// events and must have drained before cloning (the checker snapshots
// only quiescent states).
func (d *DRAM) Clone(k *sim.Kernel) *DRAM {
	n := &DRAM{
		k: k, cfg: d.cfg, store: make(map[LineAddr]Data, len(d.store)),
		busyUntil: d.busyUntil, Reads: d.Reads, Writes: d.Writes,
	}
	for a, v := range d.store {
		n.store[a] = v
	}
	return n
}

// occupancy is the channel time one line transfer occupies.
func (d *DRAM) occupancy() sim.Time {
	c := sim.Time(float64(LineBytes) / d.cfg.BytesPerCycle)
	if c == 0 {
		c = 1
	}
	return c
}

// schedule reserves the channel and returns the completion time.
func (d *DRAM) schedule() sim.Time {
	start := d.k.Now()
	if d.busyUntil > start {
		start = d.busyUntil
	}
	d.busyUntil = start + d.occupancy()
	return d.busyUntil + d.cfg.AccessLatency
}

// Read fetches a line; done is called with the data when the access
// completes.
func (d *DRAM) Read(addr LineAddr, done func(Data)) {
	t := d.schedule()
	d.k.Schedule(t, func() {
		d.Reads++
		done(d.store[addr])
	})
}

// Write stores a line; done (may be nil) is called when the access
// completes.
func (d *DRAM) Write(addr LineAddr, data Data, done func()) {
	t := d.schedule()
	d.k.Schedule(t, func() {
		d.Writes++
		d.store[addr] = data
		if done != nil {
			done()
		}
	})
}

// Peek returns the current stored value without timing, for invariant
// checks and test assertions.
func (d *DRAM) Peek(addr LineAddr) Data { return d.store[addr] }

// Poke sets memory contents directly, for test/bench initialization.
func (d *DRAM) Poke(addr LineAddr, data Data) { d.store[addr] = data }

// DumpState writes a canonical rendering of memory contents for
// model-checker hashing.
func (d *DRAM) DumpState(w io.Writer) {
	var lines []LineAddr
	for a := range d.store {
		lines = append(lines, a)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	fmt.Fprint(w, "DRAM")
	for _, a := range lines {
		fmt.Fprintf(w, "%x:%v;", uint64(a), d.store[a])
	}
	fmt.Fprintln(w)
}
