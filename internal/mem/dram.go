package mem

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"c3/internal/sim"
)

// DRAMConfig describes the memory device backing the CXL pool
// (Table III: DDR5, 4400 MT/s, 1 channel, 10 ns device latency).
type DRAMConfig struct {
	// AccessLatency is the fixed device access latency.
	AccessLatency sim.Time
	// BytesPerCycle is the channel bandwidth; a request occupies the
	// channel for LineBytes/BytesPerCycle cycles, serializing bursts.
	BytesPerCycle float64
}

// DefaultDRAMConfig matches Table III: 10 ns access, one DDR5-4400
// channel (4400 MT/s x 8 B = 35.2 GB/s; at 2 GHz that is 17.6 B/cycle).
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{AccessLatency: sim.NS(10), BytesPerCycle: 17.6}
}

// dramStore is the refcounted line store shared copy-on-write between a
// DRAM and its clones: a clone shares the map and bumps refs; the first
// write on either side copies it. refs is the only cross-goroutine state
// (concurrent Clones of one parent), so the scheme is race-free while
// each model stays single-goroutine-owned.
type dramStore struct {
	refs atomic.Int32
	m    map[LineAddr]Data
}

func newDramStore(n int) *dramStore {
	s := &dramStore{m: make(map[LineAddr]Data, n)}
	s.refs.Store(1)
	return s
}

// DRAM is a latency/bandwidth model of the memory device, plus the
// authoritative storage for line data not currently owned by any cache.
type DRAM struct {
	k     *sim.Kernel
	cfg   DRAMConfig
	store *dramStore
	// busyUntil models single-channel serialization.
	busyUntil sim.Time

	// Reads and Writes count completed accesses, for stats.
	Reads, Writes uint64
}

// NewDRAM returns a DRAM attached to kernel k. Unwritten lines read as
// zero, like freshly initialized memory.
func NewDRAM(k *sim.Kernel, cfg DRAMConfig) *DRAM {
	if cfg.BytesPerCycle <= 0 {
		cfg.BytesPerCycle = 17.6
	}
	return &DRAM{k: k, cfg: cfg, store: newDramStore(0)}
}

// Clone returns a copy of the device attached to kernel k, for
// model-checker state snapshots. The line store is shared copy-on-write;
// a write on either side materializes a private map. In-flight accesses
// live as kernel events and must have drained before cloning (the
// checker snapshots only quiescent states).
func (d *DRAM) Clone(k *sim.Kernel) *DRAM {
	d.store.refs.Add(1)
	return &DRAM{
		k: k, cfg: d.cfg, store: d.store,
		busyUntil: d.busyUntil, Reads: d.Reads, Writes: d.Writes,
	}
}

// materialize gives the DRAM a private store before a write; with a sole
// reference (the no-clone fast path) it costs one atomic load.
func (d *DRAM) materialize() {
	s := d.store
	if s.refs.Load() == 1 {
		return
	}
	ns := newDramStore(len(s.m))
	for a, v := range s.m {
		ns.m[a] = v
	}
	d.store = ns
	s.refs.Add(-1)
}

// Materialize forces a private copy of the line store now, as if a write
// occurred (the checker's deep-copy cross-check mode).
func (d *DRAM) Materialize() { d.materialize() }

// Release drops the DRAM's reference to its store; the DRAM must not be
// used afterwards. Optional — unreleased stores are garbage collected.
func (d *DRAM) Release() {
	if d.store != nil {
		d.store.refs.Add(-1)
		d.store = nil
	}
}

// Shared reports whether the store is currently shared with a clone. For
// tests.
func (d *DRAM) Shared() bool { return d.store.refs.Load() > 1 }

// occupancy is the channel time one line transfer occupies.
func (d *DRAM) occupancy() sim.Time {
	c := sim.Time(float64(LineBytes) / d.cfg.BytesPerCycle)
	if c == 0 {
		c = 1
	}
	return c
}

// schedule reserves the channel and returns the completion time.
func (d *DRAM) schedule() sim.Time {
	start := d.k.Now()
	if d.busyUntil > start {
		start = d.busyUntil
	}
	d.busyUntil = start + d.occupancy()
	return d.busyUntil + d.cfg.AccessLatency
}

// Read fetches a line; done is called with the data when the access
// completes.
func (d *DRAM) Read(addr LineAddr, done func(Data)) {
	t := d.schedule()
	d.k.Schedule(t, func() {
		d.Reads++
		done(d.store.m[addr])
	})
}

// Write stores a line; done (may be nil) is called when the access
// completes.
func (d *DRAM) Write(addr LineAddr, data Data, done func()) {
	t := d.schedule()
	d.k.Schedule(t, func() {
		d.Writes++
		d.materialize()
		d.store.m[addr] = data
		if done != nil {
			done()
		}
	})
}

// Peek returns the current stored value without timing, for invariant
// checks and test assertions.
func (d *DRAM) Peek(addr LineAddr) Data { return d.store.m[addr] }

// Poke sets memory contents directly, for test/bench initialization.
func (d *DRAM) Poke(addr LineAddr, data Data) {
	d.materialize()
	d.store.m[addr] = data
}

// DumpState writes a canonical rendering of memory contents for
// model-checker hashing. Read-only: it never materializes a shared
// store.
func (d *DRAM) DumpState(w io.Writer) {
	var lines []LineAddr
	for a := range d.store.m {
		lines = append(lines, a)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	fmt.Fprint(w, "DRAM")
	for _, a := range lines {
		fmt.Fprintf(w, "%x:%v;", uint64(a), d.store.m[a])
	}
	fmt.Fprintln(w)
}
