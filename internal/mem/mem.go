// Package mem defines the data model shared by every coherence component:
// physical addresses, 64-byte cache lines carried by coherence messages,
// and the backing DRAM of the CXL memory device.
//
// Lines carry real data (8 words of 64 bits). Litmus tests and the
// model checker verify the data-value invariant on these words, so data
// is never faked: every coherence message that logically transfers a line
// transfers these bytes.
package mem

import "fmt"

// LineBytes is the cache line size. LineWords is the number of 64-bit
// words per line, the granularity of core loads and stores. LineShift is
// log2(LineBytes), for deriving line indices by shift; the compile-time
// check below keeps the two constants from drifting.
const (
	LineBytes = 64
	LineWords = LineBytes / 8
	LineShift = 6
)

// Compile-time guard: 1<<LineShift must equal LineBytes (a non-zero
// index into a one-element array fails to compile).
var _ = [1]struct{}{}[LineBytes-(1<<LineShift)]

// Addr is a physical byte address.
type Addr uint64

// LineAddr is an address rounded down to a line boundary. All coherence
// state is tracked at this granularity.
type LineAddr uint64

// Line returns the line address containing a.
func (a Addr) Line() LineAddr { return LineAddr(a &^ (LineBytes - 1)) }

// WordIndex returns which of the line's 8 words a falls in.
func (a Addr) WordIndex() int { return int(a>>3) & (LineWords - 1) }

// Addr returns the byte address of the first word of the line.
func (l LineAddr) Addr() Addr { return Addr(l) }

func (l LineAddr) String() string { return fmt.Sprintf("0x%x", uint64(l)) }

// Data is the payload of one cache line.
type Data [LineWords]uint64

// Word reads word i.
func (d *Data) Word(i int) uint64 { return d[i] }

// SetWord writes word i.
func (d *Data) SetWord(i int, v uint64) { d[i] = v }
