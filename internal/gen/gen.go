// Package gen is the C3 generator: it merges a local-protocol SSP spec
// with a global-protocol SSP spec into the compound translation table
// that drives the C3 controller (internal/core), following Sec. IV-B/C
// and Sec. V of the paper.
//
// For every trigger (a core request arriving from the host domain, a
// device-initiated snoop arriving from the global domain, or a CXL-cache
// eviction) and every compound stable-state pair (S_local, S_global) the
// generator derives:
//
//   - whether Rule I requires a cross-domain delegation, and if so the
//     conceptual access (load/store/evict) to simulate in the other
//     domain (the "X-Access" column of Table II);
//   - the native local flow realizing that access (the "Action" column);
//   - the resulting compound state.
//
// The generator then computes the reachable compound-state set from
// (I, I) and verifies that every pair violating the inclusion property
// demanded by Rule I — e.g. (S, I) or (M, I), where the host holds data
// the global directory does not know about — is unreachable.
package gen

import (
	"fmt"
	"sort"
	"strings"

	"c3/internal/msg"
	"c3/internal/ssp"
)

// Trigger identifies the incoming stimulus a table entry handles.
// Local request triggers use the request mnemonic from the local spec
// ("GetS", "GetM", "GetV", "WrThrough"); global snoops and evictions use
// the reserved names below.
type Trigger string

// Reserved triggers.
const (
	TrigSnpLoad  Trigger = "snp:load"  // device snoop ~ conceptual load (BISnpData)
	TrigSnpStore Trigger = "snp:store" // device snoop ~ conceptual store (BISnpInv)
	TrigEvict    Trigger = "evict"     // CXL-cache replacement (Fig. 7)
)

// GlobalOp is the nested global flow an entry starts, if any.
type GlobalOp uint8

const (
	GNone    GlobalOp = iota
	GAcqS             // acquire shared rights (MemRd,S / GGetS)
	GAcqM             // acquire exclusive ownership (MemRd,A / GGetM)
	GWBDirty          // write back dirty data (MemWr,I / GPutM)
	GWBClean          // notify clean eviction (GPutS; absent under CXL)
)

func (g GlobalOp) String() string {
	switch g {
	case GNone:
		return "-"
	case GAcqS:
		return "AcqS"
	case GAcqM:
		return "AcqM"
	case GWBDirty:
		return "WB"
	case GWBClean:
		return "WBClean"
	}
	return fmt.Sprintf("GlobalOp(%d)", uint8(g))
}

// Pair is a compound stable state (S_local, S_global).
type Pair struct {
	L, G ssp.Class
}

func (p Pair) String() string { return fmt.Sprintf("(%s,%s)", p.L, p.G) }

// Key indexes the table.
type Key struct {
	Trigger Trigger
	State   Pair
}

// Entry is one generated translation (one row of Table II).
type Entry struct {
	// XAccess is the conceptual cross-domain access; AccNone when the
	// trigger is satisfiable within its origin domain.
	XAccess ssp.Access
	// GlobalOp is the nested global flow (for local triggers needing
	// delegation, and for evictions that must write back).
	GlobalOp GlobalOp
	// Plan is the nested local flow (for global snoops and for local
	// requests whose service must invalidate/downgrade host caches).
	Plan ssp.Plan
	// Grant is handed to the requesting host cache (local triggers).
	Grant ssp.Grant
	// Next is the compound state after the whole (possibly nested)
	// transaction completes. For GAcqS the runtime upgrades Next.G from
	// S to E when the completion grants exclusivity (CmpE/GDataE).
	Next Pair
	// Transient is the display name of the blocking intermediate state
	// (Table II's MI^A etc.); empty for immediate transitions.
	Transient string
}

// Table is the generated compound FSM for one protocol pair.
type Table struct {
	Local  *ssp.Spec
	Global *ssp.Spec

	Entries map[Key]Entry

	// Bindings resolved from the global spec.
	AcqSOp, AcqMOp, WBDirtyOp msg.Type
	WBCleanOp                 msg.Type // TInvalid when silent
	// SnpAccess maps incoming global snoop opcodes to conceptual
	// accesses (Table I).
	SnpAccess map[msg.Type]ssp.Access

	// Reachable is the closure of compound stable states from (I, I).
	Reachable map[Pair]bool
	// Forbidden lists pairs that violate inclusion and must never be
	// reachable.
	Forbidden []Pair
}

var mnemonics = map[string]msg.Type{
	"MemRd,S": msg.MemRdS, "MemRd,A": msg.MemRdA,
	"MemWr,I": msg.MemWrI, "MemWr,S": msg.MemWrS,
	"BISnpInv": msg.BISnpInv, "BISnpData": msg.BISnpData,
	"GGetS": msg.GGetS, "GGetM": msg.GGetM,
	"GPutM": msg.GPutM, "GPutS": msg.GPutS, "GPutE": msg.GPutE,
	"GFwdGetS": msg.GFwdGetS, "GFwdGetM": msg.GFwdGetM, "GInv": msg.GInv,
}

// globalClasses in generation order.
var globalClasses = []ssp.Class{ssp.ClsI, ssp.ClsS, ssp.ClsE, ssp.ClsM}

// satisfies reports whether global class g provides the rights n.
func satisfies(n ssp.Need, g ssp.Class) bool {
	switch n {
	case ssp.NeedNone:
		return true
	case ssp.NeedS:
		return g == ssp.ClsS || g == ssp.ClsE || g == ssp.ClsM
	case ssp.NeedM:
		return g == ssp.ClsE || g == ssp.ClsM
	}
	return false
}

// minRights returns the weakest global class satisfying n.
func minRights(n ssp.Need) ssp.Class {
	if n == ssp.NeedM {
		return ssp.ClsM
	}
	return ssp.ClsS
}

// localRightsOK reports whether local class l is consistent with global
// class g (the inclusion property Rule I maintains). Self-invalidating
// protocols are exempt: their host caches may hold stale data by design.
func localRightsOK(l, g ssp.Class, selfInv bool) bool {
	if selfInv {
		return true
	}
	switch l {
	case ssp.ClsI:
		return true
	case ssp.ClsS, ssp.ClsF:
		return g != ssp.ClsI
	case ssp.ClsM:
		return g == ssp.ClsE || g == ssp.ClsM
	case ssp.ClsO:
		// A stale-dirty owner can coexist with global S after a load
		// snoop wrote the data back (Fig. 3 resolved via delegation).
		return g != ssp.ClsI
	}
	return false
}

// Generate merges local and global specs into a compound table.
func Generate(local, global *ssp.Spec) (*Table, error) {
	if local.Role != ssp.RoleLocal {
		return nil, fmt.Errorf("gen: %s is not a local spec", local.Name)
	}
	if global.Role != ssp.RoleGlobal {
		return nil, fmt.Errorf("gen: %s is not a global spec", global.Name)
	}
	t := &Table{
		Local: local, Global: global,
		Entries:   make(map[Key]Entry),
		SnpAccess: make(map[msg.Type]ssp.Access),
		Reachable: make(map[Pair]bool),
	}

	var ok bool
	if t.AcqSOp, ok = mnemonics[global.AcqS["send"]]; !ok {
		return nil, fmt.Errorf("gen: unknown acq S mnemonic %q", global.AcqS["send"])
	}
	if t.AcqMOp, ok = mnemonics[global.AcqM["send"]]; !ok {
		return nil, fmt.Errorf("gen: unknown acq M mnemonic %q", global.AcqM["send"])
	}
	if t.WBDirtyOp, ok = mnemonics[global.WB["dirty"]]; !ok {
		return nil, fmt.Errorf("gen: unknown wb mnemonic %q", global.WB["dirty"])
	}
	if c, has := global.WB["clean"]; has {
		if t.WBCleanOp, ok = mnemonics[c]; !ok {
			return nil, fmt.Errorf("gen: unknown clean-wb mnemonic %q", c)
		}
	}
	for name, acc := range global.SnpBind {
		op, ok := mnemonics[name]
		if !ok {
			return nil, fmt.Errorf("gen: unknown snoop mnemonic %q", name)
		}
		t.SnpAccess[op] = acc
	}

	selfInv := local.Params.SelfInvalidate

	// 1. Local request triggers: cross every request rule with every
	// global class ("simulating the core access that would trigger an
	// equivalent action in the target domain").
	for _, r := range local.Reqs {
		for _, g := range globalClasses {
			if !localRightsOK(r.Class, g, selfInv) {
				continue // compound state itself is forbidden
			}
			key := Key{Trigger: Trigger(r.Req), State: Pair{r.Class, g}}
			e := Entry{Plan: r.Plan, Grant: r.Grant}
			if satisfies(r.Need, g) {
				nextG := g
				if r.Grant == ssp.GrantM && g == ssp.ClsE {
					// Writing under exclusive-clean silently dirties the
					// CXL cache at global scope.
					nextG = ssp.ClsM
				}
				e.Next = Pair{r.Next, nextG}
				e.Grant = adjustGrant(r, g, local.Params)
			} else {
				// Rule I: delegate. The conceptual access in the global
				// domain is a load for shared rights, a store for
				// ownership.
				if r.Need == ssp.NeedM {
					e.XAccess = ssp.AccStore
					e.GlobalOp = GAcqM
				} else {
					e.XAccess = ssp.AccLoad
					e.GlobalOp = GAcqS
				}
				e.Next = Pair{r.Next, minRights(r.Need)}
				e.Transient = transientName(r.Class, g, e.Next)
				e.Grant = adjustGrant(r, e.Next.G, local.Params)
			}
			t.Entries[key] = e
		}
	}

	// 2. Global snoop triggers: the device-initiated access is realized
	// with the local protocol's native flows per the snp rules.
	for _, acc := range []ssp.Access{ssp.AccLoad, ssp.AccStore} {
		trig := TrigSnpLoad
		if acc == ssp.AccStore {
			trig = TrigSnpStore
		}
		for _, l := range local.Classes {
			for _, g := range globalClasses {
				if !localRightsOK(l, g, selfInv) {
					continue
				}
				sr, ok := local.SnpRule(acc, l)
				if !ok {
					return nil, fmt.Errorf("gen: %s lacks snp rule %v@%v", local.Name, acc, l)
				}
				var nextG ssp.Class
				if acc == ssp.AccStore {
					nextG = ssp.ClsI
				} else {
					// Sharing a line leaves global S; the response writes
					// dirty data back (the CXL WB of Fig. 2), and a snoop
					// of an invalid line leaves it invalid.
					nextG = ssp.ClsS
					if g == ssp.ClsI {
						nextG = ssp.ClsI
					}
				}
				e := Entry{Plan: sr.Plan, Next: Pair{sr.Next, nextG}}
				if acc == ssp.AccStore && sr.Next != ssp.ClsI && !selfInv {
					return nil, fmt.Errorf("gen: %s: store snoop must invalidate, got next=%v", local.Name, sr.Next)
				}
				if sr.Plan != ssp.PlanNone {
					// The local flow is the conceptual cross access.
					e.XAccess = acc
					e.Transient = transientName(l, g, e.Next)
				}
				if acc == ssp.AccLoad && g == ssp.ClsI {
					// Silently dropped earlier; nothing to share. The
					// local class keeps the spec's own successor (NT for
					// self-invalidating protocols, I otherwise).
					e.Plan = ssp.PlanNone
					e.XAccess = ssp.AccNone
					e.Next = Pair{sr.Next, ssp.ClsI}
					if !local.Params.SelfInvalidate {
						e.Next.L = ssp.ClsI
					}
					e.Transient = ""
				}
				t.Entries[Key{trig, Pair{l, g}}] = e
			}
		}
	}

	// 3. Evictions (Fig. 7): reclaim host copies, then write back dirty
	// global state. The post-eviction local class is the protocol's
	// initial class (I, or NT for self-invalidating protocols).
	initial := local.Classes[0]
	for _, l := range local.Classes {
		er, ok := local.EvtRule(l)
		if !ok {
			return nil, fmt.Errorf("gen: %s lacks evt rule for %v", local.Name, l)
		}
		for _, g := range globalClasses {
			if !localRightsOK(l, g, selfInv) {
				continue
			}
			e := Entry{Plan: er.Plan, Next: Pair{initial, ssp.ClsI}}
			if er.Plan != ssp.PlanNone {
				e.XAccess = ssp.AccStore // reclaiming mimics a store (Fig. 7)
			}
			switch g {
			case ssp.ClsM:
				e.GlobalOp = GWBDirty
			case ssp.ClsS, ssp.ClsE:
				if !global.Params.SilentCleanEvict && t.WBCleanOp != msg.TInvalid {
					e.GlobalOp = GWBClean
				}
			}
			if e.GlobalOp != GNone || e.Plan != ssp.PlanNone {
				e.Transient = transientName(l, g, e.Next)
			}
			t.Entries[Key{TrigEvict, Pair{l, g}}] = e
		}
	}

	t.computeForbidden()
	t.computeReachable()
	for _, p := range t.Forbidden {
		if t.Reachable[p] {
			return nil, fmt.Errorf("gen: forbidden compound state %v is reachable", p)
		}
	}
	return t, nil
}

// adjustGrant refines the spec's grant with Rule I context: exclusive-
// clean may only be granted when the global rights are exclusive, and
// only when no other host sharer exists (class I).
func adjustGrant(r ssp.ReqRule, g ssp.Class, p ssp.Params) ssp.Grant {
	if r.Grant == ssp.GrantS && p.GrantE && r.Class == ssp.ClsI &&
		(g == ssp.ClsE || g == ssp.ClsM) {
		return ssp.GrantE
	}
	return r.Grant
}

func transientName(l, g ssp.Class, next Pair) string {
	return fmt.Sprintf("%s%s^A,%s%s^A", l, next.L, g, next.G)
}

func (t *Table) computeForbidden() {
	selfInv := t.Local.Params.SelfInvalidate
	for _, l := range t.Local.Classes {
		for _, g := range globalClasses {
			if !localRightsOK(l, g, selfInv) {
				t.Forbidden = append(t.Forbidden, Pair{l, g})
			}
		}
	}
}

// localDecay lists the local classes reachable when host caches evict
// their copies on their own (PutS/PutE/PutM/PutO flows, which are
// handled by the runtime's directory bookkeeping rather than by table
// triggers): the last sharer leaving S yields I, an O writeback with
// surviving sharers yields S, etc.
var localDecay = map[ssp.Class][]ssp.Class{
	ssp.ClsS: {ssp.ClsI},
	ssp.ClsF: {ssp.ClsS, ssp.ClsI},
	ssp.ClsM: {ssp.ClsI},
	ssp.ClsO: {ssp.ClsS, ssp.ClsI},
}

func (t *Table) computeReachable() {
	start := Pair{t.Local.Classes[0], ssp.ClsI}
	// The initial local class is the spec's first (I or NT).
	work := []Pair{start}
	t.Reachable[start] = true
	add := func(n Pair) {
		if !t.Reachable[n] {
			t.Reachable[n] = true
			work = append(work, n)
		}
	}
	for len(work) > 0 {
		p := work[len(work)-1]
		work = work[:len(work)-1]
		for k, e := range t.Entries {
			if k.State != p {
				continue
			}
			add(e.Next)
			if e.GlobalOp == GAcqS {
				// Completion may grant E instead of S.
				add(Pair{e.Next.L, ssp.ClsE})
			}
		}
		for _, d := range localDecay[p.L] {
			if t.Local.HasClass(d) {
				add(Pair{d, p.G})
			}
		}
	}
}

// Lookup fetches the entry for (trigger, l, g); it panics on a miss,
// which indicates a generator bug or a forbidden runtime state — exactly
// the "never reachable" combinations Rule I prunes.
func (t *Table) Lookup(trig Trigger, l, g ssp.Class) Entry {
	e, ok := t.Entries[Key{trig, Pair{l, g}}]
	if !ok {
		panic(fmt.Sprintf("gen: no entry for %s at (%s,%s) in %s-%s", trig, l, g,
			t.Local.Name, t.Global.Name))
	}
	return e
}

// Has reports whether an entry exists.
func (t *Table) Has(trig Trigger, l, g ssp.Class) bool {
	_, ok := t.Entries[Key{trig, Pair{l, g}}]
	return ok
}

// Render prints the table in the style of the paper's Table II.
func (t *Table) Render() string {
	var keys []Key
	for k := range t.Entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Trigger != keys[j].Trigger {
			return keys[i].Trigger < keys[j].Trigger
		}
		if keys[i].State.L != keys[j].State.L {
			return keys[i].State.L < keys[j].State.L
		}
		return keys[i].State.G < keys[j].State.G
	})
	var b strings.Builder
	fmt.Fprintf(&b, "C3 translation table %s-%s (%d entries)\n",
		t.Local.Name, t.Global.Name, len(t.Entries))
	fmt.Fprintf(&b, "%-12s %-8s %-9s %-12s %-8s %-8s %s\n",
		"Message", "S", "X-Access", "Action", "Global", "Grant", "S_next")
	for _, k := range keys {
		e := t.Entries[k]
		fmt.Fprintf(&b, "%-12s %-8s %-9s %-12s %-8s %-8s %s\n",
			k.Trigger, k.State, e.XAccess, e.Plan, e.GlobalOp, e.Grant, e.Next)
	}
	b.WriteString("\nForbidden compound states (pruned by Rule I):")
	for _, p := range t.Forbidden {
		fmt.Fprintf(&b, " %s", p)
	}
	b.WriteString("\nReachable stable states:")
	var rs []string
	for p := range t.Reachable {
		rs = append(rs, p.String())
	}
	sort.Strings(rs)
	for _, p := range rs {
		fmt.Fprintf(&b, " %s", p)
	}
	b.WriteString("\n")
	return b.String()
}
