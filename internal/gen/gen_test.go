package gen

import (
	"strings"
	"testing"

	"c3/internal/msg"
	"c3/internal/ssp"
)

func mustTable(t *testing.T, local, global string) *Table {
	t.Helper()
	ls, ok := ssp.Local(local)
	if !ok {
		t.Fatalf("no local spec %q", local)
	}
	gs, ok := ssp.Global(global)
	if !ok {
		t.Fatalf("no global spec %q", global)
	}
	tab, err := Generate(ls, gs)
	if err != nil {
		t.Fatalf("Generate(%s,%s): %v", local, global, err)
	}
	return tab
}

func TestGenerateAllCombinations(t *testing.T) {
	for _, l := range ssp.LocalNames() {
		for _, g := range ssp.GlobalNames() {
			tab := mustTable(t, l, g)
			if len(tab.Entries) == 0 {
				t.Errorf("%s-%s: empty table", l, g)
			}
		}
	}
}

func TestRoleMismatchRejected(t *testing.T) {
	l, _ := ssp.Local("mesi")
	g, _ := ssp.Global("cxl")
	if _, err := Generate(g, g); err == nil {
		t.Error("global spec in local position should fail")
	}
	if _, err := Generate(l, l); err == nil {
		t.Error("local spec in global position should fail")
	}
}

// TestTableIIFragment checks the exact rows of the paper's Table II for
// the MESI-CXL pairing.
func TestTableIIFragment(t *testing.T) {
	tab := mustTable(t, "mesi", "cxl")

	// BISnpInv in (M,M): conceptual store, Fwd-GetM to host caches
	// (inv-owner), transient block, ends (I,I).
	e := tab.Lookup(TrigSnpStore, ssp.ClsM, ssp.ClsM)
	if e.XAccess != ssp.AccStore || e.Plan != ssp.PlanInvOwner || e.Next != (Pair{ssp.ClsI, ssp.ClsI}) {
		t.Errorf("BISnpInv@(M,M) = %+v", e)
	}
	if e.Transient == "" {
		t.Error("BISnpInv@(M,M) should pass through a blocking transient")
	}

	// BISnpInv in (I,M): no host involvement, data straight to the CXL
	// directory.
	e = tab.Lookup(TrigSnpStore, ssp.ClsI, ssp.ClsM)
	if e.XAccess != ssp.AccNone || e.Plan != ssp.PlanNone || e.Next != (Pair{ssp.ClsI, ssp.ClsI}) {
		t.Errorf("BISnpInv@(I,M) = %+v", e)
	}

	// BISnpData in (M,M): conceptual load, Fwd-GetS to host caches,
	// ends (S,S) under MESI.
	e = tab.Lookup(TrigSnpLoad, ssp.ClsM, ssp.ClsM)
	if e.XAccess != ssp.AccLoad || e.Plan != ssp.PlanSnpOwner || e.Next != (Pair{ssp.ClsS, ssp.ClsS}) {
		t.Errorf("BISnpData@(M,M) = %+v", e)
	}
}

func TestMOESIKeepsOwnerOnLoadSnoop(t *testing.T) {
	tab := mustTable(t, "moesi", "cxl")
	e := tab.Lookup(TrigSnpLoad, ssp.ClsM, ssp.ClsM)
	if e.Next != (Pair{ssp.ClsO, ssp.ClsS}) {
		t.Errorf("MOESI BISnpData@(M,M) next = %v, want (O,S)", e.Next)
	}
	// The Fig. 3 inconsistency is resolved: (O,S) is a legal, reachable
	// compound state because the delegation wrote the data back.
	if !tab.Reachable[Pair{ssp.ClsO, ssp.ClsS}] {
		t.Error("(O,S) should be reachable for MOESI-CXL")
	}
}

func TestForbiddenStatesPruned(t *testing.T) {
	tab := mustTable(t, "mesi", "cxl")
	want := []Pair{
		{ssp.ClsS, ssp.ClsI},
		{ssp.ClsM, ssp.ClsI},
		{ssp.ClsM, ssp.ClsS},
	}
	for _, p := range want {
		found := false
		for _, f := range tab.Forbidden {
			if f == p {
				found = true
			}
		}
		if !found {
			t.Errorf("%v should be forbidden", p)
		}
		if tab.Reachable[p] {
			t.Errorf("%v must not be reachable", p)
		}
	}
}

func TestRuleIDelegation(t *testing.T) {
	tab := mustTable(t, "mesi", "cxl")

	// GetM with only shared global rights must delegate a store.
	e := tab.Lookup(Trigger("GetM"), ssp.ClsS, ssp.ClsS)
	if e.GlobalOp != GAcqM || e.XAccess != ssp.AccStore {
		t.Errorf("GetM@(S,S) = %+v, want AcqM delegation", e)
	}
	// GetM under global M is satisfiable locally.
	e = tab.Lookup(Trigger("GetM"), ssp.ClsS, ssp.ClsM)
	if e.GlobalOp != GNone || e.Plan != ssp.PlanInvSharers {
		t.Errorf("GetM@(S,M) = %+v, want local inv-sharers", e)
	}
	// GetS on a cold line delegates a load.
	e = tab.Lookup(Trigger("GetS"), ssp.ClsI, ssp.ClsI)
	if e.GlobalOp != GAcqS || e.XAccess != ssp.AccLoad {
		t.Errorf("GetS@(I,I) = %+v, want AcqS delegation", e)
	}
	// Writing under exclusive-clean silently dirties global state.
	e = tab.Lookup(Trigger("GetM"), ssp.ClsI, ssp.ClsE)
	if e.GlobalOp != GNone || e.Next.G != ssp.ClsM {
		t.Errorf("GetM@(I,E) = %+v, want silent E->M", e)
	}
}

func TestGrantEOnlyUnderGlobalExclusivity(t *testing.T) {
	tab := mustTable(t, "mesi", "cxl")
	if e := tab.Lookup(Trigger("GetS"), ssp.ClsI, ssp.ClsE); e.Grant != ssp.GrantE {
		t.Errorf("GetS@(I,E) grant = %v, want E", e.Grant)
	}
	if e := tab.Lookup(Trigger("GetS"), ssp.ClsI, ssp.ClsS); e.Grant != ssp.GrantS {
		t.Errorf("GetS@(I,S) grant = %v, want S (no exclusivity under global S)", e.Grant)
	}
	if e := tab.Lookup(Trigger("GetS"), ssp.ClsS, ssp.ClsM); e.Grant != ssp.GrantS {
		t.Errorf("GetS@(S,M) grant = %v, want S (other sharers exist)", e.Grant)
	}
}

func TestEvictions(t *testing.T) {
	cxl := mustTable(t, "mesi", "cxl")
	// Fig. 7: evicting (M,M) reclaims from the owner, then writes back.
	e := cxl.Lookup(TrigEvict, ssp.ClsM, ssp.ClsM)
	if e.Plan != ssp.PlanInvOwner || e.GlobalOp != GWBDirty || e.XAccess != ssp.AccStore {
		t.Errorf("evict@(M,M) = %+v", e)
	}
	// Clean lines evict silently under CXL...
	e = cxl.Lookup(TrigEvict, ssp.ClsS, ssp.ClsS)
	if e.GlobalOp != GNone {
		t.Errorf("CXL clean evict should be silent, got %+v", e)
	}
	// ...but notify the H-MESI directory.
	hm := mustTable(t, "mesi", "hmesi")
	e = hm.Lookup(TrigEvict, ssp.ClsS, ssp.ClsS)
	if e.GlobalOp != GWBClean {
		t.Errorf("H-MESI clean evict should send GPutS, got %+v", e)
	}
}

func TestMessageBindings(t *testing.T) {
	cxl := mustTable(t, "mesi", "cxl")
	if cxl.AcqSOp != msg.MemRdS || cxl.AcqMOp != msg.MemRdA || cxl.WBDirtyOp != msg.MemWrI {
		t.Errorf("CXL bindings: %v %v %v", cxl.AcqSOp, cxl.AcqMOp, cxl.WBDirtyOp)
	}
	if cxl.SnpAccess[msg.BISnpInv] != ssp.AccStore || cxl.SnpAccess[msg.BISnpData] != ssp.AccLoad {
		t.Errorf("CXL snoop accesses: %v", cxl.SnpAccess)
	}
	hm := mustTable(t, "mesi", "hmesi")
	if hm.AcqSOp != msg.GGetS || hm.AcqMOp != msg.GGetM || hm.WBDirtyOp != msg.GPutM {
		t.Errorf("HMESI bindings: %v %v %v", hm.AcqSOp, hm.AcqMOp, hm.WBDirtyOp)
	}
	if hm.WBCleanOp != msg.GPutS {
		t.Errorf("HMESI clean WB: %v", hm.WBCleanOp)
	}
}

func TestRCCUntrackedSnoops(t *testing.T) {
	tab := mustTable(t, "rcc", "cxl")
	// RCC answers global snoops straight from the CXL cache.
	e := tab.Lookup(TrigSnpStore, ssp.ClsN, ssp.ClsM)
	if e.Plan != ssp.PlanNone || e.Next != (Pair{ssp.ClsN, ssp.ClsI}) {
		t.Errorf("RCC BISnpInv@(NT,M) = %+v", e)
	}
	// WrThrough needs ownership: delegation from (NT, I).
	e = tab.Lookup(Trigger("WrThrough"), ssp.ClsN, ssp.ClsI)
	if e.GlobalOp != GAcqM {
		t.Errorf("RCC WrThrough@(NT,I) = %+v, want AcqM (Fig. 8 flow)", e)
	}
	if len(tab.Forbidden) != 0 {
		t.Errorf("self-invalidating protocol has no forbidden pairs, got %v", tab.Forbidden)
	}
}

func TestReachableClosure(t *testing.T) {
	tab := mustTable(t, "mesi", "cxl")
	for _, p := range []Pair{
		{ssp.ClsI, ssp.ClsI},
		{ssp.ClsS, ssp.ClsS},
		{ssp.ClsM, ssp.ClsM},
		{ssp.ClsS, ssp.ClsE}, // AcqS answered with exclusivity, then GetS
		{ssp.ClsI, ssp.ClsS}, // CXL cache caches a line no L1 holds
	} {
		if !tab.Reachable[p] {
			t.Errorf("%v should be reachable", p)
		}
	}
}

func TestLookupPanicsOnForbidden(t *testing.T) {
	tab := mustTable(t, "mesi", "cxl")
	defer func() {
		if recover() == nil {
			t.Fatal("Lookup of a forbidden state should panic")
		}
	}()
	tab.Lookup(Trigger("GetS"), ssp.ClsM, ssp.ClsI)
}

func TestHasAndRender(t *testing.T) {
	tab := mustTable(t, "mesi", "cxl")
	if !tab.Has(Trigger("GetS"), ssp.ClsI, ssp.ClsI) {
		t.Error("Has should find GetS@(I,I)")
	}
	if tab.Has(Trigger("GetS"), ssp.ClsM, ssp.ClsI) {
		t.Error("Has should not find forbidden states")
	}
	r := tab.Render()
	for _, want := range []string{"X-Access", "MESI-CXL", "Forbidden", "(M,I)"} {
		if !strings.Contains(r, want) {
			t.Errorf("Render missing %q", want)
		}
	}
}

func TestGlobalOpString(t *testing.T) {
	if GAcqM.String() != "AcqM" || GWBDirty.String() != "WB" || GNone.String() != "-" {
		t.Error("GlobalOp stringer mismatch")
	}
}

// TestPropertyTableCompleteness: for every generated pairing, every
// reachable compound state must have an entry for every trigger that can
// arrive in it — the "no holes in the compound FSM" property the paper's
// generator guarantees by construction.
func TestPropertyTableCompleteness(t *testing.T) {
	for _, l := range ssp.LocalNames() {
		for _, g := range ssp.GlobalNames() {
			tab := mustTable(t, l, g)
			var reqs []Trigger
			seen := map[Trigger]bool{}
			for k := range tab.Entries {
				if k.Trigger != TrigSnpLoad && k.Trigger != TrigSnpStore &&
					k.Trigger != TrigEvict && !seen[k.Trigger] {
					seen[k.Trigger] = true
					reqs = append(reqs, k.Trigger)
				}
			}
			for pair := range tab.Reachable {
				for _, trig := range reqs {
					if !tab.Has(trig, pair.L, pair.G) {
						t.Errorf("%s-%s: hole at %v for %s", l, g, pair, trig)
					}
				}
				for _, trig := range []Trigger{TrigSnpLoad, TrigSnpStore, TrigEvict} {
					if !tab.Has(trig, pair.L, pair.G) {
						t.Errorf("%s-%s: hole at %v for %s", l, g, pair, trig)
					}
				}
			}
		}
	}
}

// TestPropertyNextStatesLegal: every entry's successor state must itself
// be a legal (non-forbidden) compound state.
func TestPropertyNextStatesLegal(t *testing.T) {
	for _, l := range ssp.LocalNames() {
		for _, g := range ssp.GlobalNames() {
			tab := mustTable(t, l, g)
			forbidden := map[Pair]bool{}
			for _, p := range tab.Forbidden {
				forbidden[p] = true
			}
			for k, e := range tab.Entries {
				if forbidden[e.Next] {
					t.Errorf("%s-%s: %v at %v transitions to forbidden %v",
						l, g, k.Trigger, k.State, e.Next)
				}
			}
		}
	}
}
