// Package core implements C3, the CXL coherence controller — the paper's
// primary contribution. One C3 instance sits at the junction of a host
// cluster's local coherence protocol and the global protocol (CXL.mem or
// the hierarchical-MESI baseline), fusing a local directory controller
// with a global cache controller (Fig. 5).
//
// The controller is driven by the compound translation table produced by
// internal/gen from the two protocols' SSP specs. The runtime provides
// the generic machinery the table cannot capture:
//
//   - Rule I (flow delegation): requests that the compound state cannot
//     satisfy locally allocate a TBE and nest the corresponding flow in
//     the other domain; device snoops with local copies nest the local
//     reclaim flow.
//   - Rule II (atomicity / transaction nesting): while a nested flow is
//     pending, all same-line messages from the origin domain stall on the
//     TBE and are re-dispatched at completion, making every forwarded
//     transaction appear atomic in its origin domain.
//   - CXL conflict resolution (Fig. 2): a snoop arriving while a request
//     is pending triggers BIConflict; the FIFO response channel then
//     reveals the directory's serialization order — completion-first
//     means "finish, then serve the snoop fresh", ack-first means "serve
//     the snoop now, nested inside the wait, and keep waiting".
//   - CXL-cache evictions (Fig. 7): reclaim host copies with a conceptual
//     store, then run the CXL writeback sequence, then resume the request
//     that needed the frame.
package core

import (
	"fmt"
	"sort"

	"c3/internal/cache"
	"c3/internal/gen"
	"c3/internal/mem"
	"c3/internal/msg"
	"c3/internal/network"
	"c3/internal/sim"
	"c3/internal/ssp"
	"c3/internal/trace"
)

// Encoded global classes stored in cache.Entry.State.
const (
	gI = iota
	gS
	gE
	gM
)

func gclassOf(code int) ssp.Class {
	return [...]ssp.Class{ssp.ClsI, ssp.ClsS, ssp.ClsE, ssp.ClsM}[code]
}

func gcode(c ssp.Class) int {
	switch c {
	case ssp.ClsI:
		return gI
	case ssp.ClsS:
		return gS
	case ssp.ClsE:
		return gE
	case ssp.ClsM:
		return gM
	}
	panic("core: bad global class " + string(c))
}

// ldir is the local directory record for one line: which host caches
// hold it and in what role.
type ldir struct {
	class   ssp.Class
	owner   msg.NodeID
	fwd     msg.NodeID // MESIF designated forwarder
	sharers msg.NodeSet
}

func newLdir(initial ssp.Class) *ldir {
	return &ldir{class: initial, owner: msg.None, fwd: msg.None}
}

// TBE phases.
type phase uint8

const (
	phGlobal   phase = iota // nested global acquire outstanding
	phSubSnoop              // serving a snoop nested inside phGlobal
	phLocal                 // nested local flow outstanding
	phWB                    // global writeback outstanding
)

// TBE kinds.
type tKind uint8

const (
	tLocal tKind = iota // serving a host request
	tSnoop              // serving a device snoop
	tEvict              // replacing a CXL-cache line
)

type tbe struct {
	addr  mem.LineAddr
	kind  tKind
	entry gen.Entry
	ph    phase

	req *msg.Msg // original host request (tLocal)
	snp *msg.Msg // snoop being served (tSnoop) / pending sub-snoop

	// Local flow bookkeeping.
	pendingRsp  int // SnpRsp* awaited
	pendingAcks int // InvAcks awaited
	absorbDirty bool

	// Global acquire bookkeeping.
	haveData  bool
	needAcks  int
	haveAcks  int
	acksKnown bool
	grantE    bool // completion granted exclusivity (CmpE/GDataE)

	// Conflict handshake (CXL) / held completion.
	conflict *msg.Msg // snoop awaiting BIConflictAck
	heldCmp  *msg.Msg // completion held until the ack reveals the order
	// subEntry is the table entry of a snoop served nested inside a
	// global wait (phSubSnoop).
	subEntry gen.Entry

	// Eviction bookkeeping.
	evData  mem.Data
	evValid bool

	// Rule II: same-line messages stalled until this TBE retires.
	stalled []*msg.Msg
	// resume is re-dispatched after an eviction frees the frame.
	resume *msg.Msg
}

// Stats aggregates C3 telemetry.
type Stats struct {
	LocalReqs         uint64 // host requests received
	Delegations       uint64 // Rule I global acquires
	SnoopsServed      uint64 // device snoops handled
	Conflicts         uint64 // BIConflict handshakes initiated
	ConflictsDirFirst uint64 // handshakes resolved "directory first" (nested snoop)
	Evictions         uint64 // CXL-cache replacements
	Writebacks        uint64 // global dirty writebacks
	Stalled           uint64 // messages stalled on a TBE (Rule II)
	// Hybrid-memory traffic (Sec. IV-D4 extension).
	LocalMemReads  uint64
	LocalMemWrites uint64
}

// Config assembles one C3 instance.
type Config struct {
	ID        msg.NodeID
	GlobalDir msg.NodeID
	Kernel    *sim.Kernel
	// LocalNet delivers to host caches; GlobalNet to the global
	// directory. They may be the same fabric.
	LocalNet  network.Fabric
	GlobalNet network.Fabric
	Table     *gen.Table
	LLCSize   int // bytes (Table III: 4 MiB)
	LLCWays   int
	Lat       sim.Time // controller occupancy per outgoing message

	// Hybrid memory (Sec. IV-D4): when LocalRange reports true for a
	// line, the line is homed in this cluster's local memory — C3 serves
	// it as an ordinary memory-side cache without any global protocol
	// traffic, while remote (CXL pool) lines take the compound-FSM path.
	// Local lines are exclusively this cluster's by construction, so no
	// device snoops ever target them.
	LocalRange func(mem.LineAddr) bool
	LocalMem   *mem.DRAM
}

// C3 is one coherence controller instance.
type C3 struct {
	cfg   Config
	k     *sim.Kernel
	table *gen.Table
	llc   *cache.Cache
	dirs  map[mem.LineAddr]*ldir
	tbes  map[mem.LineAddr]*tbe

	// Tracer, when non-nil, observes compound-state commits. Set before
	// the simulation starts; nil keeps every hook a single branch.
	Tracer *trace.Tracer

	Stats Stats
}

// compoundState renders the stable compound state of a line as "L/G"
// (local class / global class), the paper's Table II notation.
func (c *C3) compoundState(a mem.LineAddr) string {
	return string(c.lclass(a)) + "/" + string(c.gclass(a))
}

// traceCommit emits a compound transition; old is the compoundState
// captured before the mutation. Callers guard with c.Tracer != nil.
func (c *C3) traceCommit(a mem.LineAddr, old, note string) {
	c.Tracer.State(c.k.Now(), c.cfg.ID, a, old, c.compoundState(a), note)
}

// New builds a C3 from cfg.
func New(cfg Config) *C3 {
	if cfg.LLCSize == 0 {
		cfg.LLCSize = 4 << 20
	}
	if cfg.LLCWays == 0 {
		cfg.LLCWays = 8
	}
	if cfg.Lat == 0 {
		cfg.Lat = 2
	}
	return &C3{
		cfg:   cfg,
		k:     cfg.Kernel,
		table: cfg.Table,
		llc:   cache.New(cfg.LLCSize, cfg.LLCWays),
		dirs:  make(map[mem.LineAddr]*ldir),
		tbes:  make(map[mem.LineAddr]*tbe),
	}
}

// ID returns the controller's network id.
func (c *C3) ID() msg.NodeID { return c.cfg.ID }

// Table exposes the compound table (for tooling).
func (c *C3) Table() *gen.Table { return c.table }

// LLC exposes the CXL cache for tests and invariant checks.
func (c *C3) LLC() *cache.Cache { return c.llc }

func (c *C3) initialLocal() ssp.Class { return c.table.Local.Classes[0] }

// isLocalLine reports whether a line is homed in this cluster's local
// memory (hybrid configurations only).
func (c *C3) isLocalLine(a mem.LineAddr) bool {
	return c.cfg.LocalRange != nil && c.cfg.LocalMem != nil && c.cfg.LocalRange(a)
}

func (c *C3) dir(a mem.LineAddr) *ldir {
	d := c.dirs[a]
	if d == nil {
		d = newLdir(c.initialLocal())
		c.dirs[a] = d
	}
	return d
}

// lclass reports the local stable class of a line.
func (c *C3) lclass(a mem.LineAddr) ssp.Class {
	if d := c.dirs[a]; d != nil {
		return d.class
	}
	return c.initialLocal()
}

// gclass reports the global stable class of a line. Read-only: ProbeRO
// keeps invariant checks and dumps from materializing a shared snapshot.
func (c *C3) gclass(a mem.LineAddr) ssp.Class {
	if e := c.llc.ProbeRO(a); e != nil {
		return gclassOf(e.State)
	}
	return ssp.ClsI
}

func (c *C3) sendLocal(m *msg.Msg) {
	m.Src = c.cfg.ID
	c.k.After(c.cfg.Lat, func() { c.cfg.LocalNet.Send(m) })
}

func (c *C3) sendGlobal(m *msg.Msg) {
	m.Src = c.cfg.ID
	if m.Dst == 0 {
		m.Dst = c.cfg.GlobalDir
	}
	c.k.After(c.cfg.Lat, func() { c.cfg.GlobalNet.Send(m) })
}

// Recv implements network.Port for both fabrics.
func (c *C3) Recv(m *msg.Msg) {
	switch m.Type {
	// Host-side requests.
	case msg.GetS, msg.GetM, msg.GetV, msg.WrThrough, msg.AtomicAdd, msg.AtomicXchg:
		c.localRequest(m)
	case msg.PutS, msg.PutE, msg.PutM, msg.PutO:
		c.localPut(m)
	case msg.SyncRel, msg.SyncAcq:
		// The host cache has already flushed/invalidated; the CXL cache
		// itself is always globally coherent, so the sync point is
		// immediate (Sec. IV-D2).
		c.sendLocal(&msg.Msg{Type: msg.SyncAck, Addr: m.Addr, Dst: m.Src, VNet: msg.VRsp})
	// Host-side responses to our nested local flows.
	case msg.InvAck, msg.SnpRspData, msg.SnpRspInv:
		c.localRsp(m)
	// Global domain: CXL.
	case msg.CmpS, msg.CmpE, msg.CmpM:
		c.cxlCmp(m)
	case msg.CmpWr:
		c.cmpWr(m)
	case msg.BIConflictAck:
		c.cxlConflictAck(m)
	case msg.BISnpInv, msg.BISnpData:
		c.globalSnoop(m)
	// Global domain: hierarchical MESI.
	case msg.GData, msg.GDataE, msg.GDataS, msg.GDataM:
		c.hmesiData(m)
	case msg.GInvAck:
		c.hmesiInvAck(m)
	case msg.GPutAck:
		c.cmpWr(m)
	case msg.GFwdGetS, msg.GFwdGetM, msg.GInv:
		c.globalSnoop(m)
	default:
		panic(fmt.Sprintf("core: C3 %d got unexpected %v", c.cfg.ID, m))
	}
}

func trigOf(t msg.Type) gen.Trigger {
	switch t {
	case msg.GetS:
		return "GetS"
	case msg.GetM:
		return "GetM"
	case msg.GetV:
		return "GetV"
	case msg.WrThrough:
		return "WrThrough"
	case msg.AtomicAdd, msg.AtomicXchg:
		return "Atomic"
	}
	panic(fmt.Sprintf("core: no trigger for %v", t))
}

// localRequest handles a host cache request (the left column of the
// compound table).
func (c *C3) localRequest(m *msg.Msg) {
	if t := c.tbes[m.Addr]; t != nil {
		// Rule II: the line is mid-transaction; stall.
		c.Stats.Stalled++
		t.stalled = append(t.stalled, m)
		return
	}
	c.Stats.LocalReqs++
	e := c.llc.Probe(m.Addr)
	ent := c.table.Lookup(trigOf(m.Type), c.lclass(m.Addr), c.gclass(m.Addr))

	if ent.GlobalOp == gen.GAcqS || ent.GlobalOp == gen.GAcqM {
		// Rule I: delegate to the global domain. Reserve the frame first
		// so the completion always has a home.
		if e == nil {
			if !c.llc.HasSpace(m.Addr) {
				c.evictFor(m)
				return
			}
			e = c.llc.Install(m.Addr)
			e.State = gI
		}
		t := &tbe{addr: m.Addr, kind: tLocal, entry: ent, ph: phGlobal, req: m}
		c.tbes[m.Addr] = t
		if c.isLocalLine(m.Addr) {
			// Hybrid configuration: this cluster is the line's home.
			// Fetch from local memory and self-complete with exclusive
			// rights — no global protocol traffic.
			c.Stats.LocalMemReads++
			c.cfg.LocalMem.Read(m.Addr, func(data mem.Data) {
				c.completeAcquire(t, &msg.Msg{Type: msg.CmpM, Addr: m.Addr,
					Data: msg.WithData(data)})
			})
			return
		}
		c.Stats.Delegations++
		op := c.table.AcqSOp
		if ent.GlobalOp == gen.GAcqM {
			op = c.table.AcqMOp
		}
		c.sendGlobal(&msg.Msg{Type: op, Addr: m.Addr, VNet: msg.VReq})
		return
	}

	// Locally satisfiable: run the native local flow, then grant.
	if e == nil {
		panic(fmt.Sprintf("core: local serve of %v with no CXL-cache entry", m))
	}
	c.llc.Touch(e)
	t := &tbe{addr: m.Addr, kind: tLocal, entry: ent, ph: phLocal, req: m}
	if c.startLocalFlow(t, ent.Plan, m.Src) {
		c.tbes[m.Addr] = t
		return
	}
	c.grant(t)
}

// grant finishes a host request: hand the line (or the scalar result)
// to the requestor and commit the compound state transition.
func (c *C3) grant(t *tbe) {
	m := t.req
	e := c.llc.Probe(t.addr)
	if e == nil {
		panic("core: grant with no CXL-cache entry")
	}
	d := c.dir(t.addr)
	ent := t.entry
	var preState string
	if c.Tracer != nil {
		preState = c.compoundState(t.addr)
	}

	g := ent.Grant
	if t.grantE && g == ssp.GrantS && c.table.Local.Params.GrantE {
		g = ssp.GrantE
	}

	switch m.Type {
	case msg.GetS, msg.GetM, msg.GetV:
		if !e.DataValid {
			panic(fmt.Sprintf("core: granting %v without valid data", m))
		}
		var ty msg.Type
		switch g {
		case ssp.GrantS:
			ty = msg.DataS
		case ssp.GrantE:
			ty = msg.DataE
		case ssp.GrantM:
			ty = msg.DataM
		case ssp.GrantV:
			ty = msg.DataV
		default:
			panic("core: grantless data request")
		}
		c.sendLocal(&msg.Msg{Type: ty, Addr: t.addr, Dst: m.Src, VNet: msg.VRsp,
			Data: msg.WithData(e.Data), Poisoned: e.Poisoned})
	case msg.WrThrough:
		// Merge the host's dirty words into the CXL cache (word masks
		// keep concurrent writers to distinct words intact).
		for w := 0; w < mem.LineWords; w++ {
			if m.Mask&(1<<w) != 0 {
				e.Data.SetWord(w, m.Data.Word(w))
			}
		}
		e.DataValid = true
		c.sendLocal(&msg.Msg{Type: msg.PutAck, Addr: t.addr, Dst: m.Src, VNet: msg.VRsp})
	case msg.AtomicAdd, msg.AtomicXchg:
		if !e.DataValid {
			panic("core: atomic on invalid data")
		}
		old := e.Data.Word(m.Word)
		if m.Type == msg.AtomicAdd {
			e.Data.SetWord(m.Word, old+m.Val)
		} else {
			e.Data.SetWord(m.Word, m.Val)
		}
		c.sendLocal(&msg.Msg{Type: msg.AtomicResp, Addr: t.addr, Dst: m.Src,
			VNet: msg.VRsp, Val: old, Poisoned: e.Poisoned})
	default:
		panic(fmt.Sprintf("core: grant for %v", m))
	}

	// Commit local directory state.
	nextL := ent.Next.L
	switch g {
	case ssp.GrantM:
		d.owner = m.Src
		d.fwd = msg.None
		d.sharers = 0
	case ssp.GrantE:
		d.owner = m.Src
		d.fwd = msg.None
		d.sharers = 0
		// An exclusive-clean grant leaves the directory in the owner
		// class (M covers E/M: silent upgrades).
		nextL = ssp.ClsM
	case ssp.GrantS:
		d.sharers.Add(m.Src)
		if nextL != ssp.ClsO {
			if d.owner != msg.None {
				// Downgraded owner becomes a plain sharer.
				d.sharers.Add(d.owner)
				d.owner = msg.None
			}
		}
		if c.table.Local.Params.Forwarder {
			d.fwd = m.Src
		}
	case ssp.GrantV:
		// Untracked.
	}
	d.class = nextL

	// Commit global state.
	nextG := ent.Next.G
	if t.grantE && nextG == ssp.ClsS {
		nextG = ssp.ClsE
	}
	e.State = gcode(nextG)
	if c.Tracer != nil {
		c.traceCommit(t.addr, preState, "grant "+m.Type.String())
	}
	c.retire(t)
}

// retire frees the TBE and re-dispatches everything Rule II stalled.
// Device snoops are served first and synchronously: a stream of local
// requests (e.g. a spin lock ping-ponging between host caches) must not
// starve the global domain, or the remote cluster's unlock — and with it
// the whole system — would never make progress.
func (c *C3) retire(t *tbe) {
	if c.tbes[t.addr] == t {
		delete(c.tbes, t.addr)
	}
	msgs := t.stalled
	t.stalled = nil
	var local []*msg.Msg
	if t.resume != nil {
		local = append(local, t.resume)
		t.resume = nil
	}
	for _, m := range msgs {
		if c.isGlobalSnoopType(m.Type) {
			c.Recv(m)
		} else {
			local = append(local, m)
		}
	}
	// Local re-dispatch is synchronous too: a deferred re-dispatch would
	// tie with (and lose to) the just-served requestor's next request
	// arriving off the network, starving the queue head forever (e.g. an
	// unlock store behind two spinning lock requests). The first stalled
	// request claims the fresh TBE; the rest re-stall onto it in order,
	// so FIFO service is preserved.
	for _, m := range local {
		c.Recv(m)
	}
}

func (c *C3) isGlobalSnoopType(t msg.Type) bool {
	switch t {
	case msg.BISnpInv, msg.BISnpData, msg.GFwdGetS, msg.GFwdGetM, msg.GInv:
		return true
	}
	return false
}

// localPut handles host cache evictions: pure directory bookkeeping,
// never delegated (clean and dirty data both stay in the inclusive CXL
// cache; global writebacks happen only on CXL-cache evictions).
func (c *C3) localPut(m *msg.Msg) {
	if t := c.tbes[m.Addr]; t != nil {
		c.Stats.Stalled++
		t.stalled = append(t.stalled, m)
		return
	}
	d := c.dir(m.Addr)
	e := c.llc.Probe(m.Addr)
	var preState string
	if c.Tracer != nil {
		preState = c.compoundState(m.Addr)
	}
	switch m.Type {
	case msg.PutS:
		if d.sharers.Has(m.Src) {
			d.sharers.Remove(m.Src)
			if d.fwd == m.Src {
				d.fwd = msg.None
				if d.class == ssp.ClsF {
					d.class = ssp.ClsS
				}
			}
			if d.sharers.Empty() && (d.class == ssp.ClsS || d.class == ssp.ClsF) {
				d.class = ssp.ClsI
			}
		}
	case msg.PutE, msg.PutM, msg.PutO:
		if d.owner == m.Src {
			if m.Data != nil && e != nil {
				e.Data = *m.Data
				e.DataValid = true
			}
			d.owner = msg.None
			if !d.sharers.Empty() {
				d.class = ssp.ClsS
			} else {
				d.class = ssp.ClsI
			}
		} else if d.sharers.Has(m.Src) {
			// A downgraded owner's stale PutM/PutO: treat as PutS.
			d.sharers.Remove(m.Src)
			if d.sharers.Empty() && (d.class == ssp.ClsS || d.class == ssp.ClsF) {
				d.class = ssp.ClsI
			}
		}
	}
	if c.Tracer != nil {
		c.traceCommit(m.Addr, preState, "put "+m.Type.String())
	}
	c.sendLocal(&msg.Msg{Type: msg.PutAck, Addr: m.Addr, Dst: m.Src, VNet: msg.VRsp})
}

// PeerDead reacts to a peer cluster's C3 being declared dead (host
// crash). Under hierarchical MESI the directory hands invalidations to
// peers on our behalf and we count their GInvAcks; an ack owed by the
// dead peer will never arrive, so forgive it and complete the wait. The
// directory's own reclamation walk scrubbed the dead peer from its
// sharer vectors, so the forgiven ack cannot be resurrected. With two
// clusters this is exact (the only possible acker is the dead peer);
// with more it is a documented approximation — each surviving C3
// forgives at most one ack per waiting line. CXL C3s wait only on the
// surviving DCOH and need no repair. Returns the number of waits
// repaired (counted as NAKed transactions in recovery stats).
func (c *C3) PeerDead(dead msg.NodeID) int {
	if c.isCXL() {
		return 0
	}
	// Sorted walk: completing a wait sends grants, whose order must not
	// depend on map iteration (determinism across -j shards).
	addrs := make([]mem.LineAddr, 0, len(c.tbes))
	for a := range c.tbes {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	n := 0
	for _, a := range addrs {
		t := c.tbes[a]
		if t == nil || t.kind != tLocal || t.ph != phGlobal {
			continue
		}
		if t.acksKnown && t.haveAcks < t.needAcks {
			t.needAcks--
			n++
			c.maybeCompleteHmesi(t)
		}
	}
	return n
}

// Reset cold-starts the controller for a host rejoin: every TBE, local
// directory record and CXL-cache line is dropped. Safe only when the
// cluster's caches restart empty too (the crash already discarded their
// contents) and the global side has reclaimed this node.
func (c *C3) Reset() {
	c.tbes = make(map[mem.LineAddr]*tbe)
	c.dirs = make(map[mem.LineAddr]*ldir)
	c.llc = cache.New(c.cfg.LLCSize, c.cfg.LLCWays)
}
