package core

import (
	"c3/internal/mem"
	"c3/internal/msg"
	"c3/internal/network"
	"c3/internal/sim"
)

// Clone returns a deep copy of the controller for model-checker
// snapshots, attached to kernel k and the given fabrics. All C3 state is
// plain data (directory entries, TBEs, queued messages) — in-flight
// timing lives as kernel events and must have drained before cloning.
// Hybrid-memory configurations are not cloneable: LocalMem would be
// shared with the original. The tracer is not carried over.
func (c *C3) Clone(k *sim.Kernel, local, global network.Fabric) *C3 {
	if c.cfg.LocalMem != nil {
		panic("core: Clone of C3 with hybrid local memory")
	}
	cfg := c.cfg
	cfg.Kernel, cfg.LocalNet, cfg.GlobalNet = k, local, global
	n := &C3{
		cfg: cfg, k: k, table: c.table, llc: c.llc.Clone(),
		dirs:  make(map[mem.LineAddr]*ldir, len(c.dirs)),
		tbes:  make(map[mem.LineAddr]*tbe, len(c.tbes)),
		Stats: c.Stats,
	}
	for a, d := range c.dirs {
		nd := &ldir{class: d.class, owner: d.owner, fwd: d.fwd,
			sharers: make(map[msg.NodeID]bool, len(d.sharers))}
		for id, v := range d.sharers {
			nd.sharers[id] = v
		}
		n.dirs[a] = nd
	}
	for a, t := range c.tbes {
		nt := *t
		nt.req = cloneMsg(t.req)
		nt.snp = cloneMsg(t.snp)
		nt.conflict = cloneMsg(t.conflict)
		nt.heldCmp = cloneMsg(t.heldCmp)
		nt.resume = cloneMsg(t.resume)
		nt.stalled = nil
		for _, m := range t.stalled {
			nt.stalled = append(nt.stalled, m.Clone())
		}
		n.tbes[a] = &nt
	}
	return n
}

func cloneMsg(m *msg.Msg) *msg.Msg {
	if m == nil {
		return nil
	}
	return m.Clone()
}
