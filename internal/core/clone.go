package core

import (
	"c3/internal/mem"
	"c3/internal/msg"
	"c3/internal/network"
	"c3/internal/sim"
)

// Clone returns a deep copy of the controller for model-checker
// snapshots, attached to kernel k and the given fabrics. All C3 state is
// plain data (directory entries, TBEs, queued messages) — in-flight
// timing lives as kernel events and must have drained before cloning.
// Hybrid-memory configurations are not cloneable: LocalMem would be
// shared with the original. The tracer is not carried over.
//
// The CXL cache clones copy-on-write (see cache.Cache). Messages are
// immutable after Send (see msg.Msg), so *msg.Msg pointers held by TBEs
// are shared with the original; stalled-queue slice headers are still
// private, so post-clone appends never touch the original's backing
// array. Directory and TBE records are allocated as slabs, and sharer
// vectors are NodeSet values that copy with their struct.
func (c *C3) Clone(k *sim.Kernel, local, global network.Fabric) *C3 {
	if c.cfg.LocalMem != nil {
		panic("core: Clone of C3 with hybrid local memory")
	}
	cfg := c.cfg
	cfg.Kernel, cfg.LocalNet, cfg.GlobalNet = k, local, global
	n := &C3{
		cfg: cfg, k: k, table: c.table, llc: c.llc.Clone(),
		dirs:  make(map[mem.LineAddr]*ldir, len(c.dirs)),
		tbes:  make(map[mem.LineAddr]*tbe, len(c.tbes)),
		Stats: c.Stats,
	}
	dslab := make([]ldir, len(c.dirs))
	i := 0
	for a, d := range c.dirs {
		nd := &dslab[i]
		i++
		*nd = *d
		n.dirs[a] = nd
	}
	tslab := make([]tbe, len(c.tbes))
	i = 0
	for a, t := range c.tbes {
		nt := &tslab[i]
		i++
		*nt = *t
		if len(t.stalled) > 0 {
			nt.stalled = append([]*msg.Msg(nil), t.stalled...)
		}
		n.tbes[a] = nt
	}
	return n
}

// ReleaseLLC recycles the CXL cache's frame slab (see cache.Release).
// The controller must not be used afterwards; the model checker calls
// it when retiring a snapshot.
func (c *C3) ReleaseLLC() { c.llc.Release() }

// MaterializeLLC forces a private copy of the CXL cache's frame slab,
// turning a COW clone into an eager one (the checker's deep-copy
// cross-check mode).
func (c *C3) MaterializeLLC() { c.llc.Materialize() }
