package core

import (
	"fmt"
	"io"
	"sort"

	"c3/internal/cache"
	"c3/internal/mem"
	"c3/internal/msg"
	"c3/internal/ssp"
)

// DumpState writes a canonical rendering of the controller state for the
// model checker's hashing. Read-only: it uses the RO cache accessors so
// hashing a freshly cloned snapshot never materializes its slab, and
// NodeSet vectors render in ascending id order like the sorted int
// slices the pre-NodeSet code produced.
func (c *C3) DumpState(w io.Writer) {
	fmt.Fprintf(w, "C3[%d]", c.cfg.ID)
	type ent struct {
		a mem.LineAddr
		s int
		d mem.Data
		v bool
	}
	var es []ent
	c.llc.ForEachRO(func(e *cache.Entry) {
		es = append(es, ent{e.Addr, e.State, e.Data, e.DataValid})
	})
	sort.Slice(es, func(i, j int) bool { return es[i].a < es[j].a })
	for _, e := range es {
		fmt.Fprintf(w, "l%x:%d:%v:%v;", uint64(e.a), e.s, e.d, e.v)
	}
	var lines []mem.LineAddr
	for a := range c.dirs {
		lines = append(lines, a)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, a := range lines {
		d := c.dirs[a]
		fmt.Fprintf(w, "d%x:%s:%d:%d:%v;", uint64(a), d.class, d.owner, d.fwd, d.sharers)
	}
	lines = lines[:0]
	for a := range c.tbes {
		lines = append(lines, a)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, a := range lines {
		t := c.tbes[a]
		fmt.Fprintf(w, "t%x:%d:%d:%d:%d:%v:%v:%d:%d:%d;", uint64(a), t.kind, t.ph,
			t.pendingRsp, t.pendingAcks, t.conflict != nil, t.heldCmp != nil,
			t.haveAcks, t.needAcks, len(t.stalled))
	}
	fmt.Fprintln(w)
}

// CompoundOf reports the stable compound state of a line (local class,
// global class) and whether a transaction is in flight — the hook the
// model checker uses to assert that Rule I's forbidden state pairs are
// never reachable.
func (c *C3) CompoundOf(a mem.LineAddr) (l, g ssp.Class, busy bool) {
	return c.lclass(a), c.gclass(a), c.tbes[a] != nil
}

// Lines lists every line the controller currently tracks.
func (c *C3) Lines() []mem.LineAddr {
	seen := map[mem.LineAddr]bool{}
	c.llc.ForEachRO(func(e *cache.Entry) { seen[e.Addr] = true })
	for a := range c.dirs {
		seen[a] = true
	}
	var out []mem.LineAddr
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OwnerView reports the local directory's owner and sharer view, for
// cross-checking inclusion in tests.
func (c *C3) OwnerView(a mem.LineAddr) (owner msg.NodeID, sharers []msg.NodeID) {
	d := c.dirs[a]
	if d == nil {
		return msg.None, nil
	}
	return d.owner, d.sharers.IDs()
}

// LLCData returns the CXL-cache copy of a line if data-valid.
func (c *C3) LLCData(a mem.LineAddr) (mem.Data, bool) {
	if e := c.llc.ProbeRO(a); e != nil && e.DataValid {
		return e.Data, true
	}
	return mem.Data{}, false
}
