package core

import (
	"fmt"
	"io"
	"sort"

	"c3/internal/cache"
	"c3/internal/mem"
	"c3/internal/msg"
	"c3/internal/ssp"
)

// DumpState writes a canonical rendering of the controller state for the
// model checker's hashing. Read-only: it uses the RO cache accessors so
// hashing a freshly cloned snapshot never materializes its slab, and
// NodeSet vectors render in ascending id order like the sorted int
// slices the pre-NodeSet code produced.
func (c *C3) DumpState(w io.Writer) {
	fmt.Fprintf(w, "C3[%d]", c.cfg.ID)
	type ent struct {
		a mem.LineAddr
		s int
		d mem.Data
		v bool
	}
	var es []ent
	c.llc.ForEachRO(func(e *cache.Entry) {
		es = append(es, ent{e.Addr, e.State, e.Data, e.DataValid})
	})
	sort.Slice(es, func(i, j int) bool { return es[i].a < es[j].a })
	for _, e := range es {
		fmt.Fprintf(w, "l%x:%d:%v:%v;", uint64(e.a), e.s, e.d, e.v)
	}
	var lines []mem.LineAddr
	for a := range c.dirs {
		lines = append(lines, a)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, a := range lines {
		d := c.dirs[a]
		fmt.Fprintf(w, "d%x:%s:%d:%d:%v;", uint64(a), d.class, d.owner, d.fwd, d.sharers)
	}
	lines = lines[:0]
	for a := range c.tbes {
		lines = append(lines, a)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, a := range lines {
		t := c.tbes[a]
		fmt.Fprintf(w, "t%x:%d:%d:%d:%d:%v:%v:%d:%d:%d;", uint64(a), t.kind, t.ph,
			t.pendingRsp, t.pendingAcks, t.conflict != nil, t.heldCmp != nil,
			t.haveAcks, t.needAcks, len(t.stalled))
	}
	fmt.Fprintln(w)
}

// DumpCanon writes the canonical (reduction-aware) rendering of the C3
// for the model checker's canonical hash: line addresses render through
// rnLine and host ids through rnNode (entries re-sorted by renamed
// address so symmetric renamings fingerprint identically), stale LLC
// payloads are masked, and pure default entries — an untouched local
// directory line, or (when skipInvalid allows) an LLC frame invalidated
// back to state 0 — are dropped so "absent" and "present but reset"
// merge. The controller's own id stays literal: C3s are per-cluster and
// never permute.
func (c *C3) DumpCanon(w io.Writer, rnLine func(mem.LineAddr) mem.LineAddr, rnNode func(msg.NodeID) msg.NodeID, skipInvalid bool) {
	fmt.Fprintf(w, "C3[%d]", c.cfg.ID)
	type ent struct {
		a mem.LineAddr
		s int
		d mem.Data
		v bool
	}
	var es []ent
	c.llc.ForEachRO(func(e *cache.Entry) {
		if skipInvalid && e.State == 0 {
			return
		}
		d := e.Data
		if !e.DataValid {
			d = mem.Data{}
		}
		es = append(es, ent{rnLine(e.Addr), e.State, d, e.DataValid})
	})
	sort.Slice(es, func(i, j int) bool { return es[i].a < es[j].a })
	for _, e := range es {
		fmt.Fprintf(w, "l%x:%d:%v:%v;", uint64(e.a), e.s, e.d, e.v)
	}
	lines := make([]mem.LineAddr, 0, len(c.dirs))
	orig := make(map[mem.LineAddr]mem.LineAddr, len(c.dirs))
	for a, d := range c.dirs {
		if d.class == c.initialLocal() && d.owner == msg.None && d.fwd == msg.None &&
			d.sharers.Empty() {
			continue
		}
		r := rnLine(a)
		lines = append(lines, r)
		orig[r] = a
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, r := range lines {
		d := c.dirs[orig[r]]
		fmt.Fprintf(w, "d%x:%s:%d:%d:%v;", uint64(r), d.class, rnNode(d.owner),
			rnNode(d.fwd), d.sharers.Rename(rnNode))
	}
	lines = lines[:0]
	for a := range c.tbes {
		r := rnLine(a)
		lines = append(lines, r)
		orig[r] = a
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, r := range lines {
		t := c.tbes[orig[r]]
		fmt.Fprintf(w, "t%x:%d:%d:%d:%d:%v:%v:%d:%d:%d;", uint64(r), t.kind, t.ph,
			t.pendingRsp, t.pendingAcks, t.conflict != nil, t.heldCmp != nil,
			t.haveAcks, t.needAcks, len(t.stalled))
	}
	fmt.Fprintln(w)
}

// CompoundOf reports the stable compound state of a line (local class,
// global class) and whether a transaction is in flight — the hook the
// model checker uses to assert that Rule I's forbidden state pairs are
// never reachable.
func (c *C3) CompoundOf(a mem.LineAddr) (l, g ssp.Class, busy bool) {
	return c.lclass(a), c.gclass(a), c.tbes[a] != nil
}

// Lines lists every line the controller currently tracks.
func (c *C3) Lines() []mem.LineAddr {
	seen := map[mem.LineAddr]bool{}
	c.llc.ForEachRO(func(e *cache.Entry) { seen[e.Addr] = true })
	for a := range c.dirs {
		seen[a] = true
	}
	var out []mem.LineAddr
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OwnerView reports the local directory's owner and sharer view, for
// cross-checking inclusion in tests.
func (c *C3) OwnerView(a mem.LineAddr) (owner msg.NodeID, sharers []msg.NodeID) {
	d := c.dirs[a]
	if d == nil {
		return msg.None, nil
	}
	return d.owner, d.sharers.IDs()
}

// LLCData returns the CXL-cache copy of a line if data-valid.
func (c *C3) LLCData(a mem.LineAddr) (mem.Data, bool) {
	if e := c.llc.ProbeRO(a); e != nil && e.DataValid {
		return e.Data, true
	}
	return mem.Data{}, false
}
