package core

import (
	"fmt"

	"c3/internal/cache"
	"c3/internal/gen"
	"c3/internal/msg"
	"c3/internal/ssp"
)

func (c *C3) isCXL() bool { return c.table.Global.Params.ConflictHandshake }

func (c *C3) snpTrig(t msg.Type) gen.Trigger {
	acc, ok := c.table.SnpAccess[t]
	if !ok {
		panic(fmt.Sprintf("core: %v is not a snoop of %s", t, c.table.Global.Name))
	}
	if acc == ssp.AccLoad {
		return gen.TrigSnpLoad
	}
	return gen.TrigSnpStore
}

// globalSnoop routes an incoming device snoop: fresh service, conflict
// handshake, nested service, stall, or eviction-race response, depending
// on the line's transaction state.
func (c *C3) globalSnoop(m *msg.Msg) {
	t := c.tbes[m.Addr]
	if t == nil {
		c.freshSnoop(m)
		return
	}
	switch {
	case t.kind == tLocal && t.ph == phGlobal:
		if c.isCXL() {
			// Fig. 2: a snoop racing our pending request — we cannot know
			// the directory's serialization order, so handshake.
			if t.conflict != nil {
				panic("core: second snoop during an unresolved conflict")
			}
			t.conflict = m
			c.Stats.Conflicts++
			c.sendGlobal(&msg.Msg{Type: msg.BIConflict, Addr: m.Addr, VNet: msg.VReq})
			return
		}
		// Hierarchical MESI: a GInv means the directory serialized the
		// other request first — serve it nested now. A forward means we
		// are the destined owner: stall it until our data arrives.
		if m.Type == msg.GInv {
			c.serveSubSnoop(t, m)
			return
		}
		c.Stats.Stalled++
		t.stalled = append(t.stalled, m)
	case t.kind == tEvict && !c.isCXL():
		// The directory forwarded to us while our writeback is in
		// flight: answer from the eviction buffer (the directory will
		// absorb our GPut as the copy-back).
		c.hmesiEvictRace(t, m)
	default:
		// Rule II: nested flow in progress; the snoop waits its turn.
		c.Stats.Stalled++
		t.stalled = append(t.stalled, m)
	}
}

// freshSnoop serves a device snoop with no transaction in flight: the
// table names the conceptual access and the nested local flow.
func (c *C3) freshSnoop(m *msg.Msg) {
	ent := c.table.Lookup(c.snpTrig(m.Type), c.lclass(m.Addr), c.gclass(m.Addr))
	c.Stats.SnoopsServed++
	t := &tbe{addr: m.Addr, kind: tSnoop, entry: ent, snp: m, ph: phLocal}
	c.tbes[m.Addr] = t
	if c.startLocalFlow(t, ent.Plan, msg.None) {
		return
	}
	c.snoopLocalDone(t)
}

// snoopLocalDone: host copies reclaimed (or none existed); commit the
// local transition and respond globally.
func (c *C3) snoopLocalDone(t *tbe) {
	c.applySnoopLocal(t, t.entry)
	if c.isCXL() {
		c.cxlSnoopRespond(t)
	} else {
		c.hmesiSnoopRespond(t)
	}
}

// cxlSnoopRespond implements the CXL response flows of Fig. 2: a dirty
// line performs the CXL WB sequence (MemWr -> CmpWr) before the snoop
// response; a clean line responds immediately and the DCOH falls back to
// device memory.
func (c *C3) cxlSnoopRespond(t *tbe) {
	e := c.llc.Probe(t.addr)
	dirty := t.absorbDirty || (e != nil && e.State == gM)
	if dirty && e != nil && e.DataValid {
		wb := msg.MemWrI
		if t.snp.Type == msg.BISnpData {
			wb = msg.MemWrS // retain our (about-to-be-shared) copy
		}
		c.Stats.Writebacks++
		c.sendGlobal(&msg.Msg{Type: wb, Addr: t.addr, VNet: msg.VReq,
			Data: msg.WithData(e.Data), Dirty: true, Poisoned: e.Poisoned})
		t.ph = phWB
		return
	}
	c.finishCXLSnoopRsp(t)
}

func (c *C3) finishCXLSnoopRsp(t *tbe) {
	e := c.llc.Probe(t.addr)
	ty := msg.BISnpRspI
	if t.snp.Type == msg.BISnpData && e != nil && t.entry.Next.G != ssp.ClsI {
		ty = msg.BISnpRspS
	}
	c.sendGlobal(&msg.Msg{Type: ty, Addr: t.addr, VNet: msg.VRsp})
	var preState string
	if c.Tracer != nil {
		preState = c.compoundState(t.addr)
	}
	c.commitSnoopG(t)
	if c.Tracer != nil {
		c.traceCommit(t.addr, preState, "snoop "+t.snp.Type.String())
	}
	c.retire(t)
}

func (c *C3) commitSnoopG(t *tbe) {
	e := c.llc.Probe(t.addr)
	if e == nil {
		return
	}
	if t.entry.Next.G == ssp.ClsI {
		c.removeLine(e)
	} else {
		e.State = gcode(t.entry.Next.G)
	}
}

func (c *C3) removeLine(e *cache.Entry) {
	delete(c.dirs, e.Addr)
	c.llc.Remove(e)
}

// hmesiSnoopRespond: peer-to-peer data per the 3-hop protocol.
func (c *C3) hmesiSnoopRespond(t *tbe) {
	e := c.llc.Probe(t.addr)
	var preState string
	if c.Tracer != nil {
		preState = c.compoundState(t.addr)
	}
	switch t.snp.Type {
	case msg.GFwdGetM:
		if e == nil || !e.DataValid {
			panic("core: GFwdGetM without data")
		}
		c.sendGlobal(&msg.Msg{Type: msg.GDataM, Addr: t.addr, Dst: t.snp.Req,
			VNet: msg.VRsp, Data: msg.WithData(e.Data), Poisoned: e.Poisoned})
		c.removeLine(e)
	case msg.GFwdGetS:
		if e == nil || !e.DataValid {
			panic("core: GFwdGetS without data")
		}
		c.sendGlobal(&msg.Msg{Type: msg.GDataS, Addr: t.addr, Dst: t.snp.Req,
			VNet: msg.VRsp, Data: msg.WithData(e.Data), Poisoned: e.Poisoned})
		c.sendGlobal(&msg.Msg{Type: msg.GCopyBack, Addr: t.addr, VNet: msg.VReq,
			Data: msg.WithData(e.Data), Poisoned: e.Poisoned})
		e.State = gS
	case msg.GInv:
		c.sendGlobal(&msg.Msg{Type: msg.GInvAck, Addr: t.addr, Dst: t.snp.Req,
			VNet: msg.VRsp})
		if e != nil {
			c.removeLine(e)
		}
	}
	if c.Tracer != nil {
		c.traceCommit(t.addr, preState, "snoop "+t.snp.Type.String())
	}
	c.retire(t)
}

// hmesiEvictRace answers a forward that crossed our in-flight writeback.
func (c *C3) hmesiEvictRace(t *tbe, m *msg.Msg) {
	switch m.Type {
	case msg.GFwdGetM:
		c.sendGlobal(&msg.Msg{Type: msg.GDataM, Addr: m.Addr, Dst: m.Req,
			VNet: msg.VRsp, Data: msg.WithData(t.evData)})
	case msg.GFwdGetS:
		c.sendGlobal(&msg.Msg{Type: msg.GDataS, Addr: m.Addr, Dst: m.Req,
			VNet: msg.VRsp, Data: msg.WithData(t.evData)})
	case msg.GInv:
		c.sendGlobal(&msg.Msg{Type: msg.GInvAck, Addr: m.Addr, Dst: m.Req,
			VNet: msg.VRsp})
	}
}

// --- completions ---

// cxlCmp handles CmpS/CmpE/CmpM.
func (c *C3) cxlCmp(m *msg.Msg) {
	t := c.tbes[m.Addr]
	if t == nil || t.kind != tLocal {
		panic(fmt.Sprintf("core: C3 %d completion with no request TBE: %v", c.cfg.ID, m))
	}
	if t.conflict != nil {
		// The handshake is in flight; the FIFO channel guarantees the
		// ack follows — request-first order.
		t.heldCmp = m
		return
	}
	if t.ph != phGlobal {
		panic("core: completion outside global wait")
	}
	c.completeAcquire(t, m)
}

// cmpWr handles CmpWr and GPutAck: completion of a writeback, either a
// snoop's nested CXL WB or an eviction.
func (c *C3) cmpWr(m *msg.Msg) {
	t := c.tbes[m.Addr]
	if t == nil {
		panic(fmt.Sprintf("core: C3 %d CmpWr with no TBE: %v", c.cfg.ID, m))
	}
	switch {
	case t.kind == tSnoop && t.ph == phWB:
		c.finishCXLSnoopRsp(t)
	case t.kind == tEvict && t.ph == phWB:
		c.retire(t)
	default:
		panic(fmt.Sprintf("core: CmpWr in odd state kind=%d ph=%d", t.kind, t.ph))
	}
}

// cxlConflictAck resolves the Fig. 2 handshake: if a completion already
// arrived (FIFO before this ack), the directory serialized our request
// first — finish it, then serve the snoop fresh. Otherwise the snoop was
// first — serve it nested inside the wait.
func (c *C3) cxlConflictAck(m *msg.Msg) {
	t := c.tbes[m.Addr]
	if t == nil || t.conflict == nil {
		panic(fmt.Sprintf("core: BIConflictAck with no handshake: %v", m))
	}
	snp := t.conflict
	t.conflict = nil
	if t.heldCmp != nil {
		cmp := t.heldCmp
		t.heldCmp = nil
		c.completeAcquire(t, cmp) // grants and retires
		c.k.After(1, func() { c.Recv(snp) })
		return
	}
	c.Stats.ConflictsDirFirst++
	c.serveSubSnoop(t, snp)
}

// serveSubSnoop runs a device snoop nested within our own pending
// acquire (directory-first serialization).
func (c *C3) serveSubSnoop(t *tbe, snp *msg.Msg) {
	ent := c.table.Lookup(c.snpTrig(snp.Type), c.lclass(t.addr), c.gclass(t.addr))
	c.Stats.SnoopsServed++
	t.snp = snp
	t.subEntry = ent
	t.ph = phSubSnoop
	if c.startLocalFlow(t, ent.Plan, msg.None) {
		return
	}
	c.finishSubSnoop(t)
}

// finishSubSnoop responds to the nested snoop and returns to waiting.
// Our global rights during a wait are at most clean (we were acquiring),
// so no writeback can be needed.
func (c *C3) finishSubSnoop(t *tbe) {
	c.applySnoopLocal(t, t.subEntry)
	e := c.llc.Probe(t.addr)
	if e != nil && e.State == gM {
		panic("core: dirty line while acquiring")
	}
	if c.isCXL() {
		ty := msg.BISnpRspI
		if t.snp.Type == msg.BISnpData && t.subEntry.Next.G != ssp.ClsI {
			ty = msg.BISnpRspS
		}
		c.sendGlobal(&msg.Msg{Type: ty, Addr: t.addr, VNet: msg.VRsp})
	} else {
		c.sendGlobal(&msg.Msg{Type: msg.GInvAck, Addr: t.addr, Dst: t.snp.Req,
			VNet: msg.VRsp})
	}
	// Roll the global class, but keep the frame: it is reserved for the
	// completion of our still-pending acquire.
	if e != nil {
		e.State = gcode(t.subEntry.Next.G)
		if t.subEntry.Next.G == ssp.ClsI {
			e.DataValid = false
		}
	}
	t.snp = nil
	t.ph = phGlobal
	// A pipelined H-MESI completion may have landed mid-snoop.
	c.maybeCompleteHmesi(t)
}

// completeAcquire commits a finished global acquire and runs the
// residual local flow before granting.
func (c *C3) completeAcquire(t *tbe, m *msg.Msg) {
	e := c.llc.Probe(t.addr)
	if e == nil {
		panic("core: completion with no reserved frame")
	}
	switch m.Type {
	case msg.CmpM, msg.GDataM:
		e.State = gM
	case msg.CmpE, msg.GDataE:
		e.State = gE
		t.grantE = true
	case msg.CmpS, msg.GData, msg.GDataS:
		e.State = gS
	default:
		panic(fmt.Sprintf("core: odd completion %v", m))
	}
	if m.Data != nil {
		e.Data = *m.Data
		e.DataValid = true
	} else if !e.DataValid {
		panic("core: permission-only completion without cached data")
	}
	if m.Poisoned {
		// Sticky, line-granular: a poisoned completion (retry exhaustion
		// or crash-lost copy) taints the frame until the line is dropped.
		e.Poisoned = true
	}
	t.ph = phLocal
	if c.startLocalFlow(t, t.entry.Plan, t.req.Src) {
		return
	}
	c.grant(t)
}

// --- hierarchical-MESI completion plumbing ---

func (c *C3) hmesiData(m *msg.Msg) {
	t := c.tbes[m.Addr]
	if t == nil || t.kind != tLocal {
		// A duplicate peer response from an eviction race; the bytes are
		// identical to what we already received — drop.
		return
	}
	t.haveData = true
	t.heldCmp = m
	t.acksKnown = true
	if m.Type == msg.GDataM {
		t.needAcks = m.Acks
	}
	c.maybeCompleteHmesi(t)
}

func (c *C3) hmesiInvAck(m *msg.Msg) {
	t := c.tbes[m.Addr]
	if t == nil || t.kind != tLocal {
		panic(fmt.Sprintf("core: GInvAck with no request TBE: %v", m))
	}
	t.haveAcks++
	c.maybeCompleteHmesi(t)
}

func (c *C3) maybeCompleteHmesi(t *tbe) {
	if c.isCXL() || t.ph != phGlobal {
		return
	}
	if !t.haveData || !t.acksKnown || t.haveAcks < t.needAcks {
		return
	}
	cmp := t.heldCmp
	t.heldCmp = nil
	c.completeAcquire(t, cmp)
}
