package core

import (
	"fmt"

	"c3/internal/gen"
	"c3/internal/msg"
	"c3/internal/ssp"
)

// startLocalFlow issues the native local messages realizing plan (the
// conceptual cross-domain access of Rule I). It returns false when
// nothing needed to be sent (the flow is already complete). except is
// the host cache excluded from invalidations (the requestor).
func (c *C3) startLocalFlow(t *tbe, plan ssp.Plan, except msg.NodeID) bool {
	d := c.dir(t.addr)
	t.pendingRsp, t.pendingAcks = 0, 0
	switch plan {
	case ssp.PlanNone:
		return false
	case ssp.PlanInvSharers:
		d.sharers.ForEach(func(h msg.NodeID) {
			if h == except {
				return
			}
			t.pendingAcks++
			c.sendLocal(&msg.Msg{Type: msg.Inv, Addr: t.addr, Dst: h, VNet: msg.VSnp})
		})
	case ssp.PlanSnpOwner:
		target := d.owner
		if target == msg.None {
			target = d.fwd // MESIF: the designated forwarder responds
		}
		if target == msg.None || target == except {
			return false
		}
		t.pendingRsp++
		c.sendLocal(&msg.Msg{Type: msg.SnpData, Addr: t.addr, Dst: target, VNet: msg.VSnp})
	case ssp.PlanInvOwner:
		if d.owner == msg.None || d.owner == except {
			return false
		}
		t.pendingRsp++
		c.sendLocal(&msg.Msg{Type: msg.SnpInv, Addr: t.addr, Dst: d.owner, VNet: msg.VSnp})
	case ssp.PlanInvAll:
		if d.owner != msg.None && d.owner != except {
			t.pendingRsp++
			c.sendLocal(&msg.Msg{Type: msg.SnpInv, Addr: t.addr, Dst: d.owner, VNet: msg.VSnp})
		}
		d.sharers.ForEach(func(h msg.NodeID) {
			if h == except {
				return
			}
			t.pendingAcks++
			c.sendLocal(&msg.Msg{Type: msg.Inv, Addr: t.addr, Dst: h, VNet: msg.VSnp})
		})
	}
	return t.pendingRsp+t.pendingAcks > 0
}

// localRsp routes InvAck/SnpRsp* to the line's TBE.
func (c *C3) localRsp(m *msg.Msg) {
	t := c.tbes[m.Addr]
	if t == nil {
		panic(fmt.Sprintf("core: C3 %d local response with no TBE: %v", c.cfg.ID, m))
	}
	switch m.Type {
	case msg.InvAck:
		t.pendingAcks--
	case msg.SnpRspData, msg.SnpRspInv:
		t.pendingRsp--
		if m.Data != nil {
			if e := c.llc.Probe(t.addr); e != nil {
				e.Data = *m.Data
				e.DataValid = true
				if m.Poisoned {
					e.Poisoned = true
				}
			}
			if m.Dirty {
				t.absorbDirty = true
			}
		}
	}
	if t.pendingRsp > 0 || t.pendingAcks > 0 {
		return
	}
	c.localFlowDone(t)
}

// localFlowDone fires when all local snoop responses and invalidation
// acks are in.
func (c *C3) localFlowDone(t *tbe) {
	switch {
	case t.kind == tLocal && t.ph == phLocal:
		c.grant(t)
	case t.kind == tLocal && t.ph == phSubSnoop:
		// A snoop served nested inside a global wait (conflict
		// resolution, dir-first order): respond globally, roll the
		// compound state, and keep waiting for our own completion.
		c.finishSubSnoop(t)
	case t.kind == tSnoop:
		c.snoopLocalDone(t)
	case t.kind == tEvict:
		c.evictReclaimed(t)
	default:
		panic(fmt.Sprintf("core: local flow done in odd state kind=%d ph=%d", t.kind, t.ph))
	}
}

// applySnoopLocal commits the local-side directory transition of a
// served device snoop.
func (c *C3) applySnoopLocal(t *tbe, ent gen.Entry) {
	d := c.dir(t.addr)
	nextL := ent.Next.L
	switch {
	case nextL == ssp.ClsI:
		d.owner, d.fwd = msg.None, msg.None
		d.sharers = 0
	case (nextL == ssp.ClsS || nextL == ssp.ClsF) && d.owner != msg.None && nextL != d.class:
		// Owner downgraded to sharer by a load snoop.
		d.sharers.Add(d.owner)
		if c.table.Local.Params.Forwarder {
			d.fwd = d.owner
		}
		d.owner = msg.None
	case nextL == ssp.ClsO:
		// Owner keeps the dirty line (MOESI).
	}
	d.class = nextL
}
