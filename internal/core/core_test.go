package core

import (
	"strings"
	"testing"

	"c3/internal/gen"
	"c3/internal/mem"
	"c3/internal/msg"
	"c3/internal/sim"
	"c3/internal/ssp"
)

// loopback is a minimal fabric that records sends and can replay them
// into registered ports, letting the controller be unit-tested without a
// timed network.
type loopback struct {
	sent  []*msg.Msg
	ports map[msg.NodeID]interface{ Recv(*msg.Msg) }
}

func newLoopback() *loopback {
	return &loopback{ports: map[msg.NodeID]interface{ Recv(*msg.Msg) }{}}
}

func (l *loopback) Send(m *msg.Msg) { l.sent = append(l.sent, m) }

func (l *loopback) take() []*msg.Msg {
	s := l.sent
	l.sent = nil
	return s
}

func (l *loopback) find(t *testing.T, ty msg.Type) *msg.Msg {
	t.Helper()
	for _, m := range l.sent {
		if m.Type == ty {
			return m
		}
	}
	t.Fatalf("no %v among %v", ty, l.sent)
	return nil
}

func mustTable(t *testing.T, local, global string) *gen.Table {
	t.Helper()
	ls, _ := ssp.Local(local)
	gs, _ := ssp.Global(global)
	tab, err := gen.Generate(ls, gs)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

const (
	dirID = msg.NodeID(1)
	c3ID  = msg.NodeID(2)
	l1A   = msg.NodeID(10)
	l1B   = msg.NodeID(11)
	lineX = mem.LineAddr(0x4000)
)

func newC3(t *testing.T, local, global string) (*C3, *loopback, *sim.Kernel) {
	t.Helper()
	k := &sim.Kernel{}
	fab := newLoopback()
	c := New(Config{
		ID: c3ID, GlobalDir: dirID, Kernel: k,
		LocalNet: fab, GlobalNet: fab,
		Table: mustTable(t, local, global), LLCSize: 8192, LLCWays: 2, Lat: 1,
	})
	return c, fab, k
}

func drain(k *sim.Kernel) { k.RunLimit(100_000) }

func TestColdGetSDelegates(t *testing.T) {
	c, fab, k := newC3(t, "mesi", "cxl")
	c.Recv(&msg.Msg{Type: msg.GetS, Addr: lineX, Src: l1A, VNet: msg.VReq})
	drain(k)
	m := fab.find(t, msg.MemRdS)
	if m.Dst != dirID {
		t.Fatalf("MemRd,S to %d, want dir", m.Dst)
	}
	if c.Stats.Delegations != 1 {
		t.Fatalf("Delegations = %d", c.Stats.Delegations)
	}
	// Completion grants; CmpE yields a local E grant (GrantE upgrade).
	fab.take()
	var d mem.Data
	d.SetWord(0, 9)
	c.Recv(&msg.Msg{Type: msg.CmpE, Addr: lineX, Src: dirID, VNet: msg.VRsp, Data: &d})
	drain(k)
	g := fab.find(t, msg.DataE)
	if g.Dst != l1A || g.Data.Word(0) != 9 {
		t.Fatalf("grant wrong: %v", g)
	}
	l, gc, busy := c.CompoundOf(lineX)
	if l != ssp.ClsM || gc != ssp.ClsE || busy {
		t.Fatalf("compound = (%s,%s) busy=%v, want (M,E) idle", l, gc, busy)
	}
}

func TestLocalServeAfterFill(t *testing.T) {
	c, fab, k := newC3(t, "mesi", "cxl")
	// Fill the line via A.
	c.Recv(&msg.Msg{Type: msg.GetS, Addr: lineX, Src: l1A, VNet: msg.VReq})
	drain(k)
	var d mem.Data
	c.Recv(&msg.Msg{Type: msg.CmpS, Addr: lineX, Src: dirID, VNet: msg.VRsp, Data: &d})
	drain(k)
	fab.take()
	// B's GetS is now locally satisfiable — no new global traffic.
	c.Recv(&msg.Msg{Type: msg.GetS, Addr: lineX, Src: l1B, VNet: msg.VReq})
	drain(k)
	for _, m := range fab.sent {
		if m.Type == msg.MemRdS || m.Type == msg.MemRdA {
			t.Fatalf("unexpected delegation: %v", m)
		}
	}
	fab.find(t, msg.DataS)
}

func TestGetMInvalidatesLocalSharers(t *testing.T) {
	c, fab, k := newC3(t, "mesi", "cxl")
	// A and B both share the line (via one delegation + one local serve).
	c.Recv(&msg.Msg{Type: msg.GetS, Addr: lineX, Src: l1A, VNet: msg.VReq})
	drain(k)
	var d mem.Data
	c.Recv(&msg.Msg{Type: msg.CmpS, Addr: lineX, Src: dirID, VNet: msg.VRsp, Data: &d})
	drain(k)
	c.Recv(&msg.Msg{Type: msg.GetS, Addr: lineX, Src: l1B, VNet: msg.VReq})
	drain(k)
	fab.take()

	// A upgrades: global AcqM; after CmpM, B must be invalidated before
	// the grant (Rule II nesting).
	c.Recv(&msg.Msg{Type: msg.GetM, Addr: lineX, Src: l1A, VNet: msg.VReq})
	drain(k)
	fab.find(t, msg.MemRdA)
	fab.take()
	c.Recv(&msg.Msg{Type: msg.CmpM, Addr: lineX, Src: dirID, VNet: msg.VRsp, Data: &d})
	drain(k)
	inv := fab.find(t, msg.Inv)
	if inv.Dst != l1B {
		t.Fatalf("Inv to %d, want B", inv.Dst)
	}
	// No grant until B acks.
	for _, m := range fab.sent {
		if m.Type == msg.DataM {
			t.Fatal("granted before invalidation completed")
		}
	}
	c.Recv(&msg.Msg{Type: msg.InvAck, Addr: lineX, Src: l1B, VNet: msg.VRsp})
	drain(k)
	g := fab.find(t, msg.DataM)
	if g.Dst != l1A {
		t.Fatalf("DataM to %d", g.Dst)
	}
}

func TestSnoopStoreReclaimsOwnerWithCXLWB(t *testing.T) {
	c, fab, k := newC3(t, "mesi", "cxl")
	// A owns the line dirty.
	c.Recv(&msg.Msg{Type: msg.GetM, Addr: lineX, Src: l1A, VNet: msg.VReq})
	drain(k)
	var d mem.Data
	c.Recv(&msg.Msg{Type: msg.CmpM, Addr: lineX, Src: dirID, VNet: msg.VRsp, Data: &d})
	drain(k)
	fab.take()

	// Device snoop: BISnpInv must pull the line from A, write it back
	// (the 6-message flow), then respond BISnpRsp-I.
	c.Recv(&msg.Msg{Type: msg.BISnpInv, Addr: lineX, Src: dirID, VNet: msg.VSnp})
	drain(k)
	snp := fab.find(t, msg.SnpInv)
	if snp.Dst != l1A {
		t.Fatalf("SnpInv to %d", snp.Dst)
	}
	fab.take()
	var dirty mem.Data
	dirty.SetWord(0, 77)
	c.Recv(&msg.Msg{Type: msg.SnpRspInv, Addr: lineX, Src: l1A, VNet: msg.VRsp,
		Data: &dirty, Dirty: true})
	drain(k)
	wb := fab.find(t, msg.MemWrI)
	if wb.Data.Word(0) != 77 {
		t.Fatal("writeback lost the dirty data")
	}
	// The snoop response comes only after CmpWr.
	for _, m := range fab.sent {
		if m.Type == msg.BISnpRspI {
			t.Fatal("responded before the CXL WB completed")
		}
	}
	fab.take()
	c.Recv(&msg.Msg{Type: msg.CmpWr, Addr: lineX, Src: dirID, VNet: msg.VRsp})
	drain(k)
	fab.find(t, msg.BISnpRspI)
	l, g, _ := c.CompoundOf(lineX)
	if l != ssp.ClsI || g != ssp.ClsI {
		t.Fatalf("compound after snoop = (%s,%s), want (I,I)", l, g)
	}
}

func TestConflictHandshakeRequestFirst(t *testing.T) {
	c, fab, k := newC3(t, "mesi", "cxl")
	c.Recv(&msg.Msg{Type: msg.GetM, Addr: lineX, Src: l1A, VNet: msg.VReq})
	drain(k)
	fab.take()
	// A snoop races our pending MemRdA: handshake starts.
	c.Recv(&msg.Msg{Type: msg.BISnpInv, Addr: lineX, Src: dirID, VNet: msg.VSnp})
	drain(k)
	fab.find(t, msg.BIConflict)
	if c.Stats.Conflicts != 1 {
		t.Fatalf("Conflicts = %d", c.Stats.Conflicts)
	}
	fab.take()
	// Completion arrives before the ack: request-first. Grant, then the
	// snoop is served fresh (invalidating what was just granted).
	var d mem.Data
	c.Recv(&msg.Msg{Type: msg.CmpM, Addr: lineX, Src: dirID, VNet: msg.VRsp, Data: &d})
	drain(k)
	if len(fab.take()) != 0 {
		t.Fatal("nothing should happen until the handshake resolves")
	}
	c.Recv(&msg.Msg{Type: msg.BIConflictAck, Addr: lineX, Src: dirID, VNet: msg.VRsp})
	drain(k)
	fab.find(t, msg.DataM)  // the grant completed first
	fab.find(t, msg.SnpInv) // then the snoop reclaims from A
}

func TestConflictHandshakeSnoopFirst(t *testing.T) {
	c, fab, k := newC3(t, "mesi", "cxl")
	c.Recv(&msg.Msg{Type: msg.GetM, Addr: lineX, Src: l1A, VNet: msg.VReq})
	drain(k)
	fab.take()
	c.Recv(&msg.Msg{Type: msg.BISnpInv, Addr: lineX, Src: dirID, VNet: msg.VSnp})
	drain(k)
	fab.take()
	// Ack arrives with no completion: directory-first. We respond to the
	// snoop now (nothing held locally: clean miss) and keep waiting.
	c.Recv(&msg.Msg{Type: msg.BIConflictAck, Addr: lineX, Src: dirID, VNet: msg.VRsp})
	drain(k)
	fab.find(t, msg.BISnpRspI)
	_, _, busy := c.CompoundOf(lineX)
	if !busy {
		t.Fatal("acquire should still be pending")
	}
	fab.take()
	var d mem.Data
	c.Recv(&msg.Msg{Type: msg.CmpM, Addr: lineX, Src: dirID, VNet: msg.VRsp, Data: &d})
	drain(k)
	fab.find(t, msg.DataM)
}

func TestRuleIIStallsSameLine(t *testing.T) {
	c, fab, k := newC3(t, "mesi", "cxl")
	c.Recv(&msg.Msg{Type: msg.GetS, Addr: lineX, Src: l1A, VNet: msg.VReq})
	drain(k)
	fab.take()
	// B's request to the same line stalls behind the TBE.
	c.Recv(&msg.Msg{Type: msg.GetS, Addr: lineX, Src: l1B, VNet: msg.VReq})
	drain(k)
	if c.Stats.Stalled != 1 {
		t.Fatalf("Stalled = %d, want 1", c.Stats.Stalled)
	}
	var d mem.Data
	c.Recv(&msg.Msg{Type: msg.CmpS, Addr: lineX, Src: dirID, VNet: msg.VRsp, Data: &d})
	drain(k)
	// Both grants eventually go out.
	grants := 0
	for _, m := range fab.take() {
		if m.Type == msg.DataS || m.Type == msg.DataE {
			grants++
		}
	}
	if grants != 2 {
		t.Fatalf("%d grants, want 2", grants)
	}
}

func TestLocalPutBookkeeping(t *testing.T) {
	c, fab, k := newC3(t, "mesi", "cxl")
	c.Recv(&msg.Msg{Type: msg.GetM, Addr: lineX, Src: l1A, VNet: msg.VReq})
	drain(k)
	var d mem.Data
	c.Recv(&msg.Msg{Type: msg.CmpM, Addr: lineX, Src: dirID, VNet: msg.VRsp, Data: &d})
	drain(k)
	fab.take()
	var dirty mem.Data
	dirty.SetWord(2, 5)
	c.Recv(&msg.Msg{Type: msg.PutM, Addr: lineX, Src: l1A, VNet: msg.VReq,
		Data: &dirty, Dirty: true})
	drain(k)
	fab.find(t, msg.PutAck)
	l, g, _ := c.CompoundOf(lineX)
	if l != ssp.ClsI || g != ssp.ClsM {
		t.Fatalf("compound after PutM = (%s,%s), want (I,M)", l, g)
	}
	if got, ok := c.LLCData(lineX); !ok || got.Word(2) != 5 {
		t.Fatal("LLC did not absorb the writeback data")
	}
	// A stale PutM from a non-owner is acked and ignored.
	fab.take()
	c.Recv(&msg.Msg{Type: msg.PutM, Addr: lineX, Src: l1B, VNet: msg.VReq,
		Data: &d, Dirty: true})
	drain(k)
	fab.find(t, msg.PutAck)
	if got, _ := c.LLCData(lineX); got.Word(2) != 5 {
		t.Fatal("stale PutM clobbered LLC data")
	}
}

func TestHMESISnoopPeerData(t *testing.T) {
	c, fab, k := newC3(t, "mesi", "hmesi")
	c.Recv(&msg.Msg{Type: msg.GetM, Addr: lineX, Src: l1A, VNet: msg.VReq})
	drain(k)
	fab.find(t, msg.GGetM)
	fab.take()
	var d mem.Data
	d.SetWord(0, 3)
	c.Recv(&msg.Msg{Type: msg.GDataM, Addr: lineX, Src: dirID, VNet: msg.VRsp, Data: &d})
	drain(k)
	fab.take()
	// A GFwdGetM for peer 9: reclaim locally, then peer-to-peer GDataM.
	c.Recv(&msg.Msg{Type: msg.GFwdGetM, Addr: lineX, Src: dirID, Req: 9, VNet: msg.VSnp})
	drain(k)
	fab.find(t, msg.SnpInv)
	fab.take()
	var dd mem.Data
	dd.SetWord(0, 4)
	c.Recv(&msg.Msg{Type: msg.SnpRspInv, Addr: lineX, Src: l1A, VNet: msg.VRsp,
		Data: &dd, Dirty: true})
	drain(k)
	g := fab.find(t, msg.GDataM)
	if g.Dst != 9 || g.Data.Word(0) != 4 {
		t.Fatalf("peer data wrong: %v", g)
	}
}

func TestRenderedTableMentionsStats(t *testing.T) {
	c, _, _ := newC3(t, "mesi", "cxl")
	if !strings.Contains(c.Table().Render(), "GetS") {
		t.Fatal("table render broken")
	}
	if c.ID() != c3ID || c.LLC() == nil {
		t.Fatal("accessors broken")
	}
}
