package core

import (
	"c3/internal/cache"
	"c3/internal/gen"
	"c3/internal/msg"
)

// evictFor frees a frame in resume's set (Fig. 7): reclaim host copies
// of the victim with a conceptual store, write dirty data back globally,
// then re-dispatch the request that needed the frame.
func (c *C3) evictFor(resume *msg.Msg) {
	victim := c.llc.VictimFunc(resume.Addr, func(e *cache.Entry) bool {
		return c.tbes[e.Addr] == nil
	})
	if victim == nil {
		// Every way is mid-transaction; retry shortly (transactions are
		// finite, so this always makes progress).
		c.Stats.Stalled++
		c.k.After(20, func() { c.Recv(resume) })
		return
	}
	c.Stats.Evictions++
	ent := c.table.Lookup(gen.TrigEvict, c.lclass(victim.Addr), gclassOf(victim.State))
	t := &tbe{addr: victim.Addr, kind: tEvict, entry: ent, ph: phLocal, resume: resume}
	c.tbes[victim.Addr] = t
	if c.startLocalFlow(t, ent.Plan, msg.None) {
		return
	}
	c.evictReclaimed(t)
}

// evictReclaimed runs once host copies are reclaimed: the CXL-cache data
// is now authoritative; write it back if dirty (or if a silently-dirtied
// owner made it so), then release the frame.
func (c *C3) evictReclaimed(t *tbe) {
	e := c.llc.Probe(t.addr)
	if e == nil {
		panic("core: evicting a missing line")
	}
	if c.Tracer != nil {
		// Every evict path below ends with the line gone (I/I).
		c.Tracer.State(c.k.Now(), c.cfg.ID, t.addr, c.compoundState(t.addr), "I/I", "evict")
	}
	dirty := t.absorbDirty || e.State == gM
	t.evData = e.Data
	t.evValid = e.DataValid

	op := t.entry.GlobalOp
	if dirty && op != gen.GWBDirty {
		// A host owner dirtied a globally-clean (E) line silently; the
		// table's static entry could not know.
		op = gen.GWBDirty
	}
	if c.isLocalLine(t.addr) {
		// Hybrid configuration: the line's home is this cluster's local
		// memory; no global messages.
		if dirty {
			c.Stats.LocalMemWrites++
			data := e.Data
			c.removeLine(e)
			t.ph = phWB
			c.cfg.LocalMem.Write(t.addr, data, func() { c.retire(t) })
			return
		}
		c.removeLine(e)
		c.retire(t)
		return
	}
	switch op {
	case gen.GWBDirty:
		if !e.DataValid {
			panic("core: dirty eviction without valid data")
		}
		c.Stats.Writebacks++
		c.sendGlobal(&msg.Msg{Type: c.table.WBDirtyOp, Addr: t.addr, VNet: msg.VReq,
			Data: msg.WithData(e.Data), Dirty: true, Poisoned: e.Poisoned})
		c.removeLine(e)
		t.ph = phWB
	case gen.GWBClean:
		c.sendGlobal(&msg.Msg{Type: c.table.WBCleanOp, Addr: t.addr, VNet: msg.VReq})
		c.removeLine(e)
		t.ph = phWB
	default:
		// Silent clean eviction (CXL): just drop.
		c.removeLine(e)
		c.retire(t)
	}
}
