package core

import (
	"testing"

	"c3/internal/mem"
	"c3/internal/msg"
	"c3/internal/sim"
	"c3/internal/ssp"
)

// tinyC3 builds a C3 with a 2-set x 2-way CXL cache so evictions trigger.
func tinyC3(t *testing.T, local, global string) (*C3, *loopback, *sim.Kernel) {
	t.Helper()
	k := &sim.Kernel{}
	fab := newLoopback()
	c := New(Config{
		ID: c3ID, GlobalDir: dirID, Kernel: k,
		LocalNet: fab, GlobalNet: fab,
		Table: mustTable(t, local, global), LLCSize: 4 * mem.LineBytes, LLCWays: 2, Lat: 1,
	})
	return c, fab, k
}

// sameSet returns the i-th line mapping to lineX's set (2 sets -> stride
// of 2 lines).
func sameSet(i int) mem.LineAddr { return lineX + mem.LineAddr(i*2*mem.LineBytes) }

func fillLine(t *testing.T, c *C3, fab *loopback, k *sim.Kernel, a mem.LineAddr, owner msg.NodeID, dirty bool) {
	t.Helper()
	ty := msg.GetS
	if dirty {
		ty = msg.GetM
	}
	c.Recv(&msg.Msg{Type: ty, Addr: a, Src: owner, VNet: msg.VReq})
	k.RunLimit(100_000)
	var d mem.Data
	d.SetWord(0, uint64(a))
	cmp := msg.CmpS
	if dirty {
		cmp = msg.CmpM
	}
	c.Recv(&msg.Msg{Type: cmp, Addr: a, Src: dirID, VNet: msg.VRsp, Data: &d})
	k.RunLimit(100_000)
	fab.take()
}

func TestEvictionFig7DirtyOwner(t *testing.T) {
	// Fig. 7: evicting a (M, M) line reclaims the host copy (conceptual
	// store), runs the CXL writeback, then resumes the blocked request.
	c, fab, k := tinyC3(t, "mesi", "cxl")
	fillLine(t, c, fab, k, sameSet(0), l1A, true)
	fillLine(t, c, fab, k, sameSet(1), l1A, true)

	// A third line in the same set forces an eviction.
	c.Recv(&msg.Msg{Type: msg.GetS, Addr: sameSet(2), Src: l1B, VNet: msg.VReq})
	k.RunLimit(100_000)
	snp := fab.find(t, msg.SnpInv) // reclaim from the owner first
	if c.Stats.Evictions != 1 {
		t.Fatalf("Evictions = %d", c.Stats.Evictions)
	}
	fab.take()
	var d mem.Data
	d.SetWord(3, 9)
	c.Recv(&msg.Msg{Type: msg.SnpRspInv, Addr: snp.Addr, Src: l1A, VNet: msg.VRsp,
		Data: &d, Dirty: true})
	k.RunLimit(100_000)
	wb := fab.find(t, msg.MemWrI) // then the CXL WB sequence
	if wb.Data.Word(3) != 9 {
		t.Fatal("eviction writeback lost reclaimed data")
	}
	fab.take()
	c.Recv(&msg.Msg{Type: msg.CmpWr, Addr: snp.Addr, Src: dirID, VNet: msg.VRsp})
	k.RunLimit(100_000)
	// Only now does the original request proceed (as a fresh delegation).
	fab.find(t, msg.MemRdS)
	l, g, _ := c.CompoundOf(snp.Addr)
	if l != ssp.ClsI || g != ssp.ClsI {
		t.Fatalf("evicted line = (%s,%s)", l, g)
	}
}

func TestEvictionCleanIsSilentUnderCXL(t *testing.T) {
	c, fab, k := tinyC3(t, "mesi", "cxl")
	fillLine(t, c, fab, k, sameSet(0), l1A, false)
	fillLine(t, c, fab, k, sameSet(1), l1A, false)
	c.Recv(&msg.Msg{Type: msg.GetS, Addr: sameSet(2), Src: l1B, VNet: msg.VReq})
	k.RunLimit(100_000)
	// The clean victim needs a local reclaim (inv-sharers) but no global
	// writeback message.
	fab.find(t, msg.Inv)
	fab.take()
	victim := sameSet(0)
	c.Recv(&msg.Msg{Type: msg.InvAck, Addr: victim, Src: l1A, VNet: msg.VRsp})
	k.RunLimit(100_000)
	for _, m := range fab.sent {
		if m.Type == msg.MemWrI || m.Type == msg.MemWrS || m.Type == msg.GPutS {
			t.Fatalf("clean CXL eviction sent %v", m)
		}
	}
	fab.find(t, msg.MemRdS) // the resumed request
}

func TestEvictionCleanNotifiesHMESI(t *testing.T) {
	c, fab, k := tinyC3(t, "mesi", "hmesi")
	// Fill two clean lines via HMESI completions.
	for i := 0; i < 2; i++ {
		c.Recv(&msg.Msg{Type: msg.GetS, Addr: sameSet(i), Src: l1A, VNet: msg.VReq})
		k.RunLimit(100_000)
		var d mem.Data
		c.Recv(&msg.Msg{Type: msg.GData, Addr: sameSet(i), Src: dirID, VNet: msg.VRsp, Data: &d})
		k.RunLimit(100_000)
		fab.take()
	}
	c.Recv(&msg.Msg{Type: msg.GetS, Addr: sameSet(2), Src: l1B, VNet: msg.VReq})
	k.RunLimit(100_000)
	fab.find(t, msg.Inv)
	fab.take()
	c.Recv(&msg.Msg{Type: msg.InvAck, Addr: sameSet(0), Src: l1A, VNet: msg.VRsp})
	k.RunLimit(100_000)
	fab.find(t, msg.GPutS) // H-MESI has no silent evictions
}

func TestRCCTriggersAtC3(t *testing.T) {
	c, fab, k := newC3(t, "rcc", "cxl")
	// GetV delegates AcqS.
	c.Recv(&msg.Msg{Type: msg.GetV, Addr: lineX, Src: l1A, VNet: msg.VReq})
	k.RunLimit(100_000)
	fab.find(t, msg.MemRdS)
	fab.take()
	var d mem.Data
	d.SetWord(0, 3)
	c.Recv(&msg.Msg{Type: msg.CmpS, Addr: lineX, Src: dirID, VNet: msg.VRsp, Data: &d})
	k.RunLimit(100_000)
	g := fab.find(t, msg.DataV)
	if g.Data.Word(0) != 3 {
		t.Fatal("GetV grant data")
	}
	fab.take()

	// WrThrough on a shared line needs ownership first (Fig. 8).
	var wd mem.Data
	wd.SetWord(2, 8)
	c.Recv(&msg.Msg{Type: msg.WrThrough, Addr: lineX, Src: l1A, VNet: msg.VReq,
		Data: &wd, Mask: 1 << 2, Rel: true})
	k.RunLimit(100_000)
	fab.find(t, msg.MemRdA)
	fab.take()
	c.Recv(&msg.Msg{Type: msg.CmpM, Addr: lineX, Src: dirID, VNet: msg.VRsp, Data: &d})
	k.RunLimit(100_000)
	fab.find(t, msg.PutAck)
	got, _ := c.LLCData(lineX)
	if got.Word(2) != 8 || got.Word(0) != 3 {
		t.Fatalf("masked merge wrong: %v", got)
	}

	// Atomics execute on the CXL cache under global M.
	fab.take()
	c.Recv(&msg.Msg{Type: msg.AtomicAdd, Addr: lineX, Src: l1A, VNet: msg.VReq,
		Word: 2, Val: 5})
	k.RunLimit(100_000)
	r := fab.find(t, msg.AtomicResp)
	if r.Val != 8 {
		t.Fatalf("atomic old = %d", r.Val)
	}
	got, _ = c.LLCData(lineX)
	if got.Word(2) != 13 {
		t.Fatalf("atomic result = %d", got.Word(2))
	}

	// Sync ops ack immediately (the CXL cache is always coherent).
	fab.take()
	c.Recv(&msg.Msg{Type: msg.SyncRel, Src: l1A, VNet: msg.VReq})
	k.RunLimit(100_000)
	fab.find(t, msg.SyncAck)
}

func TestMESIFForwarderTracked(t *testing.T) {
	c, fab, k := newC3(t, "mesif", "cxl")
	fillViaGetS := func(src msg.NodeID) {
		c.Recv(&msg.Msg{Type: msg.GetS, Addr: lineX, Src: src, VNet: msg.VReq})
		k.RunLimit(100_000)
	}
	fillViaGetS(l1A)
	var d mem.Data
	c.Recv(&msg.Msg{Type: msg.CmpS, Addr: lineX, Src: dirID, VNet: msg.VRsp, Data: &d})
	k.RunLimit(100_000)
	fab.take()
	// Second reader: the designated forwarder (A) supplies the data.
	fillViaGetS(l1B)
	snp := fab.find(t, msg.SnpData)
	if snp.Dst != l1A {
		t.Fatalf("forward to %d, want the F holder", snp.Dst)
	}
	fab.take()
	c.Recv(&msg.Msg{Type: msg.SnpRspData, Addr: lineX, Src: l1A, VNet: msg.VRsp, Data: &d})
	k.RunLimit(100_000)
	g := fab.find(t, msg.DataS)
	if g.Dst != l1B {
		t.Fatal("grant misrouted")
	}
	// The new reader is now the forwarder.
	_, sharers := c.OwnerView(lineX)
	if len(sharers) != 2 {
		t.Fatalf("sharers: %v", sharers)
	}
}
