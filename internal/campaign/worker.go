package campaign

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"c3/internal/litmus"
	"c3/internal/obs"
)

// WorkerConfig parameterizes one worker process (or in-process worker,
// in tests).
type WorkerConfig struct {
	// Coordinator is the base URL ("http://127.0.0.1:8423").
	Coordinator string
	// Name identifies the worker in leases and statusz (default
	// "host:pid").
	Name string
	// Slots is how many shards the worker runs concurrently (default 1).
	// Each slot is an independent lease loop; shard results are
	// scheduling-independent, so slots never affect report bytes.
	Slots int
	// Poll is the idle re-poll interval when the queue has nothing
	// leasable (default 500ms).
	Poll time.Duration
	// ProbeTimeout bounds the initial /healthz probe loop (default 30s):
	// a worker started before its coordinator waits this long for it to
	// come up before failing.
	ProbeTimeout time.Duration
	// Interrupt, when non-nil, requests graceful shutdown once closed:
	// in-flight shards stop at their next poll, their leases are
	// released without penalty, and RunWorker returns ErrWorkerInterrupted.
	Interrupt <-chan struct{}
	// Logf sinks progress lines (default stderr; tests use a discard).
	Logf func(format string, args ...any)
}

// ErrWorkerInterrupted reports a graceful worker shutdown: leases were
// released, no result was lost, the campaign continues elsewhere.
var ErrWorkerInterrupted = errors.New("campaign: worker interrupted")

// RunWorker joins the coordinator's campaign and runs shards until the
// coordinator reports the campaign complete (nil), the worker is
// interrupted (ErrWorkerInterrupted), or the coordinator stays
// unreachable past its liveness grace (error).
//
// The loop, per slot: lease a shard, run it as a fresh deterministic
// litmus campaign (exactly the single-process engine — same seeds, same
// bytes), submit the row under its content-addressed key, repeat. A
// heartbeat goroutine renews all held leases at TTL/3; if the
// coordinator dies mid-shard the submit fails, the worker retries
// against /healthz, and gives up after ProbeTimeout.
func RunWorker(cfg WorkerConfig) error {
	if cfg.Name == "" {
		host, _ := os.Hostname()
		cfg.Name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 1
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 500 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "c3worker: "+format+"\n", args...)
		}
	}
	w := &worker{cfg: cfg, client: &http.Client{Timeout: 30 * time.Second},
		leases: make(map[string]struct{})}

	// Probe the coordinator's liveness endpoint before joining: a fleet
	// manager can start workers and coordinator in any order.
	if err := w.waitHealthy(); err != nil {
		return err
	}
	spec, err := w.fetchSpec()
	if err != nil {
		return err
	}
	// The handshake: this binary must compute the same row-key
	// fingerprint the coordinator does, or every result would be
	// rejected. Fail loudly now instead.
	localSuffix, err := spec.Spec.Suffix()
	if err != nil {
		return err
	}
	if localSuffix != spec.Suffix {
		return fmt.Errorf("campaign: version mismatch: worker fingerprint %q != coordinator %q (rebuild the worker from the coordinator's code)",
			localSuffix, spec.Suffix)
	}
	soakCfg, err := spec.Spec.SoakConfig()
	if err != nil {
		return err
	}
	w.spec, w.suffix, w.soakCfg = spec.Spec, spec.Suffix, soakCfg
	cfg.Logf("joined %s: %d jobs, suffix %q, %d slot(s)", cfg.Coordinator, spec.Jobs, spec.Suffix, cfg.Slots)

	// One heartbeat loop for all slots. TTL arrives with the first
	// lease; until then the loop idles.
	hbStop := make(chan struct{})
	hbDead := make(chan struct{})
	go w.heartbeatLoop(hbStop, hbDead)
	defer func() { close(hbStop); <-hbDead }()

	var wg sync.WaitGroup
	errs := make([]error, cfg.Slots)
	for i := 0; i < cfg.Slots; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.slotLoop()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

type worker struct {
	cfg     WorkerConfig
	client  *http.Client
	spec    Spec
	suffix  string
	soakCfg litmus.SoakConfig

	mu     sync.Mutex
	leases map[string]struct{}
	ttl    time.Duration
}

func (w *worker) interrupted() bool {
	if w.cfg.Interrupt == nil {
		return false
	}
	select {
	case <-w.cfg.Interrupt:
		return true
	default:
		return false
	}
}

// sleep waits d or until interrupt.
func (w *worker) sleep(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	if w.cfg.Interrupt == nil {
		<-t.C
		return
	}
	select {
	case <-t.C:
	case <-w.cfg.Interrupt:
	}
}

func (w *worker) url(path string) string { return w.cfg.Coordinator + path }

func (w *worker) postJSON(path string, req, resp any) (int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	r, err := w.client.Post(w.url(path), "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer r.Body.Close()
	if r.StatusCode == http.StatusOK && resp != nil {
		if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
			return r.StatusCode, err
		}
		return r.StatusCode, nil
	}
	msg, _ := io.ReadAll(io.LimitReader(r.Body, 4096))
	if r.StatusCode >= 400 {
		return r.StatusCode, fmt.Errorf("campaign: %s: %s: %s", path, r.Status, bytes.TrimSpace(msg))
	}
	return r.StatusCode, nil
}

// waitHealthy polls the coordinator's /healthz until it answers 200 or
// ProbeTimeout elapses.
func (w *worker) waitHealthy() error {
	deadline := time.Now().Add(w.cfg.ProbeTimeout)
	var lastErr error
	for {
		if w.interrupted() {
			return ErrWorkerInterrupted
		}
		resp, err := w.client.Get(w.url("/healthz"))
		if err == nil {
			var h obs.Health
			derr := json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
			if derr == nil && resp.StatusCode == http.StatusOK && h.OK {
				return nil
			}
			err = fmt.Errorf("campaign: /healthz: status %d", resp.StatusCode)
		}
		lastErr = err
		if time.Now().After(deadline) {
			return fmt.Errorf("campaign: coordinator %s unhealthy after %v: %w",
				w.cfg.Coordinator, w.cfg.ProbeTimeout, lastErr)
		}
		w.sleep(250 * time.Millisecond)
	}
}

func (w *worker) fetchSpec() (SpecResponse, error) {
	var spec SpecResponse
	resp, err := w.client.Get(w.url("/spec"))
	if err != nil {
		return spec, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return spec, fmt.Errorf("campaign: /spec: %s", resp.Status)
	}
	return spec, json.NewDecoder(resp.Body).Decode(&spec)
}

// heartbeatLoop renews all held leases. It derives its cadence from the
// lease TTL (TTL/3) once the first lease sets it.
func (w *worker) heartbeatLoop(stop, dead chan struct{}) {
	defer close(dead)
	for {
		w.mu.Lock()
		interval := w.ttl / 3
		ids := make([]string, 0, len(w.leases))
		for id := range w.leases {
			ids = append(ids, id)
		}
		w.mu.Unlock()
		if interval <= 0 {
			interval = time.Second
		}
		select {
		case <-stop:
			return
		case <-time.After(interval):
		}
		if len(ids) == 0 {
			continue
		}
		var resp HeartbeatResponse
		if _, err := w.postJSON("/heartbeat", &HeartbeatRequest{Worker: w.cfg.Name, Leases: ids}, &resp); err != nil {
			w.cfg.Logf("heartbeat: %v", err)
		}
	}
}

func (w *worker) trackLease(id string, ttl time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.leases[id] = struct{}{}
	if ttl > 0 {
		w.ttl = ttl
	}
}

func (w *worker) dropLease(id string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.leases, id)
}

// slotLoop is one slot's lease→run→submit cycle.
func (w *worker) slotLoop() error {
	consecutiveErrs := 0
	for {
		if w.interrupted() {
			return ErrWorkerInterrupted
		}
		var lease LeaseResponse
		status, err := w.postJSON("/lease", &LeaseRequest{Worker: w.cfg.Name}, &lease)
		switch {
		case err != nil && status == http.StatusGone:
			return nil // campaign complete
		case err != nil:
			consecutiveErrs++
			if consecutiveErrs >= 3 {
				// Coordinator gone? Re-probe its liveness endpoint; if it
				// stays down past the grace, exit with the error.
				if herr := w.waitHealthy(); herr != nil {
					return fmt.Errorf("campaign: coordinator lost: %w (last lease error: %v)", herr, err)
				}
				consecutiveErrs = 0
			}
			w.sleep(w.cfg.Poll)
			continue
		case status == http.StatusNoContent:
			consecutiveErrs = 0
			w.sleep(w.cfg.Poll)
			continue
		}
		consecutiveErrs = 0
		w.trackLease(lease.Lease, time.Duration(lease.TTLMS)*time.Millisecond)
		if err := w.runAndSubmit(lease); err != nil {
			if errors.Is(err, ErrWorkerInterrupted) {
				return err
			}
			w.cfg.Logf("shard %s: %v", lease.Job.Label(), err)
			w.sleep(w.cfg.Poll)
		}
	}
}

// runAndSubmit executes one leased shard and submits its row. The shard
// runs through the exact single-process engine (litmus.RunSoak with one
// job) so its row is byte-identical to what an uninterrupted c3soak
// would put in the same report slot.
func (w *worker) runAndSubmit(lease LeaseResponse) error {
	job := lease.Job
	cfg := w.soakCfg
	cfg.Tests = []string{job.Test}
	plan, err := parsePlanRef(job.Plan)
	if err != nil {
		// A job this binary cannot even parse: penalty-release so the
		// shard counts a failure and eventually quarantines.
		w.release(lease, true)
		return err
	}
	cfg.Plans = []litmus.NamedPlan{plan}
	cfg.Seeds = []int64{job.Seed}
	cfg.Workers = 1
	cfg.Interrupt = w.cfg.Interrupt
	cfg.Observer = nil
	cfg.Completed = nil

	rep, err := litmus.RunSoak(cfg)
	if err != nil {
		w.release(lease, true)
		return err
	}
	if len(rep.Runs) != 1 {
		w.release(lease, true)
		return fmt.Errorf("campaign: shard %s produced %d rows, want 1", job.Label(), len(rep.Runs))
	}
	row := rep.Runs[0]
	if row.Interrupted {
		// No verdict: hand the shard back untouched and shut down.
		w.release(lease, false)
		return ErrWorkerInterrupted
	}
	defer w.dropLease(lease.Lease)
	var resp map[string]bool
	if _, err := w.postJSON("/result", &ResultRequest{
		Worker: w.cfg.Name,
		Lease:  lease.Lease,
		JobID:  job.ID,
		RowKey: job.RowKey(w.suffix),
		Row:    row,
	}, &resp); err != nil {
		return fmt.Errorf("campaign: submit %s: %w", job.Label(), err)
	}
	w.cfg.Logf("shard %s done (%s)", job.Label(), RowVerdict(row))
	return nil
}

func (w *worker) release(lease LeaseResponse, penalty bool) {
	defer w.dropLease(lease.Lease)
	var resp map[string]bool
	if _, err := w.postJSON("/release", &ReleaseRequest{
		Worker: w.cfg.Name, Lease: lease.Lease, Penalty: penalty,
	}, &resp); err != nil {
		w.cfg.Logf("release %s: %v", lease.Job.Label(), err)
	}
}
