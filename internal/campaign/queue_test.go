package campaign

import (
	"strings"
	"sync"
	"testing"
	"time"

	"c3/internal/litmus"
)

// fakeClock is a mutable clock for driving the lease state machine
// deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func testJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			ID:   i,
			Test: "MP",
			Plan: PlanRef{Name: "light", Spec: "drop=0.01"},
			Seed: int64(i + 1),
		}
	}
	return jobs
}

func doneRow(j Job) litmus.SoakRun {
	return litmus.SoakRun{Test: j.Test, Plan: j.Plan.Name, Seed: j.Seed, Iters: 4}
}

func TestQueueLeaseOrder(t *testing.T) {
	clk := newFakeClock()
	q := NewQueue(testJobs(3), nil, time.Minute, 3, clk.Now)

	for want := 0; want < 3; want++ {
		job, lease, ok, done := q.Lease("w1")
		if !ok || done {
			t.Fatalf("lease %d: ok=%v done=%v", want, ok, done)
		}
		if job.ID != want {
			t.Fatalf("lease %d: got job %d (leases must hand out the lowest eligible ID)", want, job.ID)
		}
		if lease.ID == "" || lease.TTL != time.Minute {
			t.Fatalf("lease %d: bad lease %+v", want, lease)
		}
	}
	// Everything in flight: not leasable, but not done either.
	if _, _, ok, done := q.Lease("w1"); ok || done {
		t.Fatalf("all leased: ok=%v done=%v, want false,false", ok, done)
	}
}

func TestQueueExpiryRequeueAndBackoff(t *testing.T) {
	clk := newFakeClock()
	ttl := 10 * time.Second
	q := NewQueue(testJobs(2), nil, ttl, 3, clk.Now)

	job0, _, ok, _ := q.Lease("w1")
	if !ok || job0.ID != 0 {
		t.Fatalf("initial lease: ok=%v job=%+v", ok, job0)
	}

	// Expire the lease: the shard requeues under a backoff gate, so the
	// next lease skips it and grants job 1 instead.
	clk.Advance(ttl + time.Second)
	if n := q.ExpireStale(); n != 1 {
		t.Fatalf("ExpireStale = %d, want 1", n)
	}
	job, _, ok, _ := q.Lease("w2")
	if !ok || job.ID != 1 {
		t.Fatalf("post-expiry lease: ok=%v job %d, want job 1 (job 0 is backoff-gated)", ok, job.ID)
	}

	// Past the first-failure gate (250ms) job 0 is leasable again.
	clk.Advance(requeueBackoffBase + time.Millisecond)
	job, _, ok, _ = q.Lease("w2")
	if !ok || job.ID != 0 {
		t.Fatalf("post-backoff lease: ok=%v job %d, want job 0", ok, job.ID)
	}

	snap := q.Snapshot()
	if snap.Expiries != 1 || snap.Requeues != 1 {
		t.Fatalf("snapshot %+v, want 1 expiry and 1 requeue", snap)
	}
}

func TestQueueQuarantine(t *testing.T) {
	clk := newFakeClock()
	ttl := 5 * time.Second
	maxFailures := 2
	q := NewQueue(testJobs(1), nil, ttl, maxFailures, clk.Now)

	// Burn through the failure budget: each expiry requeues until
	// failures exceed maxFailures, then the shard quarantines.
	for i := 0; i < maxFailures+1; i++ {
		clk.Advance(requeueBackoffCap + time.Second) // past any gate
		job, _, ok, done := q.Lease("flaky")
		if !ok || done || job.ID != 0 {
			t.Fatalf("attempt %d: ok=%v done=%v job=%+v", i, ok, done, job)
		}
		clk.Advance(ttl + time.Second)
		q.ExpireStale()
	}

	select {
	case <-q.Done():
	default:
		t.Fatal("queue not done after quarantine of its only shard")
	}
	if _, _, ok, done := q.Lease("flaky"); ok || !done {
		t.Fatalf("lease after quarantine: ok=%v done=%v, want false,true", ok, done)
	}

	rows := q.Rows()
	if len(rows) != 1 {
		t.Fatalf("Rows() = %d rows, want 1", len(rows))
	}
	if !strings.Contains(rows[0].Err, "quarantined: 3 lease failures") ||
		!strings.Contains(rows[0].Err, `"flaky"`) {
		t.Fatalf("quarantine row err = %q, want lease-failure count and last worker", rows[0].Err)
	}
	if snap := q.Snapshot(); snap.Quarantined != 1 {
		t.Fatalf("snapshot %+v, want Quarantined=1", snap)
	}
}

func TestQueueHeartbeatRenewal(t *testing.T) {
	clk := newFakeClock()
	ttl := 10 * time.Second
	q := NewQueue(testJobs(1), nil, ttl, 3, clk.Now)

	_, lease, ok, _ := q.Lease("w1")
	if !ok {
		t.Fatal("lease failed")
	}

	// Heartbeats push the expiry out indefinitely.
	for i := 0; i < 5; i++ {
		clk.Advance(ttl - time.Second)
		valid := q.Heartbeat("w1", []string{lease.ID})
		if len(valid) != 1 || valid[0] != lease.ID {
			t.Fatalf("heartbeat %d: valid=%v, want [%s]", i, valid, lease.ID)
		}
	}
	if n := q.ExpireStale(); n != 0 {
		t.Fatalf("ExpireStale after heartbeats = %d, want 0", n)
	}

	// A heartbeat from the wrong worker renews nothing.
	if valid := q.Heartbeat("imposter", []string{lease.ID}); len(valid) != 0 {
		t.Fatalf("imposter heartbeat renewed %v", valid)
	}

	// Silence past the TTL expires the lease; the next heartbeat reports
	// it gone.
	clk.Advance(ttl + time.Second)
	if valid := q.Heartbeat("w1", []string{lease.ID}); len(valid) != 0 {
		t.Fatalf("heartbeat after expiry: valid=%v, want none", valid)
	}
}

func TestQueueCompleteIdempotentAndLate(t *testing.T) {
	clk := newFakeClock()
	ttl := 5 * time.Second
	jobs := testJobs(2)
	q := NewQueue(jobs, nil, ttl, 3, clk.Now)

	job, _, _, _ := q.Lease("w1")
	first, err := q.Complete(job.ID, doneRow(job))
	if err != nil || !first {
		t.Fatalf("Complete = %v, %v; want first=true", first, err)
	}
	// Duplicate submission (at-least-once): acknowledged, not first.
	first, err = q.Complete(job.ID, doneRow(job))
	if err != nil || first {
		t.Fatalf("duplicate Complete = %v, %v; want first=false", first, err)
	}

	// Late result: lease job 1, let it expire, then the original worker
	// finishes anyway. The result is accepted — whoever finishes,
	// finishes.
	job1, _, _, _ := q.Lease("w1")
	clk.Advance(ttl + time.Second)
	q.ExpireStale()
	first, err = q.Complete(job1.ID, doneRow(job1))
	if err != nil || !first {
		t.Fatalf("late Complete = %v, %v; want first=true", first, err)
	}

	select {
	case <-q.Done():
	default:
		t.Fatal("queue not done after all shards completed")
	}
	if _, err := q.Complete(99, litmus.SoakRun{}); err == nil {
		t.Fatal("Complete(unknown job) did not error")
	}
}

func TestQueueCompleteUnquarantines(t *testing.T) {
	clk := newFakeClock()
	ttl := 5 * time.Second
	q := NewQueue(testJobs(1), nil, ttl, 1, clk.Now)

	for i := 0; i < 2; i++ {
		clk.Advance(requeueBackoffCap + time.Second)
		if _, _, ok, _ := q.Lease("w1"); !ok {
			t.Fatalf("attempt %d: lease failed", i)
		}
		clk.Advance(ttl + time.Second)
		q.ExpireStale()
	}
	if snap := q.Snapshot(); snap.Quarantined != 1 {
		t.Fatalf("snapshot %+v, want Quarantined=1", snap)
	}

	// The slow worker finishes after all: its row replaces the
	// quarantine error (the work did complete).
	row := doneRow(testJobs(1)[0])
	if first, err := q.Complete(0, row); err != nil || !first {
		t.Fatalf("Complete on quarantined = %v, %v; want first=true", first, err)
	}
	rows := q.Rows()
	if rows[0].Err != "" || rows[0].Iters != row.Iters {
		t.Fatalf("row after un-quarantine = %+v, want the submitted row", rows[0])
	}
	snap := q.Snapshot()
	if snap.Done != 1 || snap.Quarantined != 0 {
		t.Fatalf("snapshot %+v, want Done=1 Quarantined=0", snap)
	}
}

func TestQueueReleasePenalty(t *testing.T) {
	clk := newFakeClock()
	q := NewQueue(testJobs(1), nil, time.Minute, 3, clk.Now)

	// Graceful release: immediate requeue, no gate, no failure count.
	_, lease, _, _ := q.Lease("w1")
	if !q.Release(lease.ID, false) {
		t.Fatal("Release(no penalty) did not find the lease")
	}
	job, lease, ok, _ := q.Lease("w1")
	if !ok || job.ID != 0 {
		t.Fatalf("lease after graceful release: ok=%v job=%+v, want immediate regrant", ok, job)
	}

	// Penalty release: counts toward quarantine and gates the shard.
	if !q.Release(lease.ID, true) {
		t.Fatal("Release(penalty) did not find the lease")
	}
	if _, _, ok, done := q.Lease("w1"); ok || done {
		t.Fatalf("lease during penalty backoff: ok=%v done=%v, want gated", ok, done)
	}
	clk.Advance(requeueBackoffBase + time.Millisecond)
	if _, _, ok, _ := q.Lease("w1"); !ok {
		t.Fatal("lease after penalty backoff elapsed: want regrant")
	}

	// Unknown lease: not found.
	if q.Release("L999", false) {
		t.Fatal("Release(unknown lease) reported found")
	}
}

func TestQueueSeededCompleted(t *testing.T) {
	jobs := testJobs(2)
	completed := map[string]litmus.SoakRun{
		jobs[0].Label(): doneRow(jobs[0]),
	}
	clk := newFakeClock()
	q := NewQueue(jobs, completed, time.Minute, 3, clk.Now)

	// The replayed shard is born done and never leased.
	job, _, ok, _ := q.Lease("w1")
	if !ok || job.ID != 1 {
		t.Fatalf("lease from seeded queue: ok=%v job %d, want job 1", ok, job.ID)
	}
	rows := q.Rows()
	if !rows[0].Resumed {
		t.Fatalf("seeded row not marked Resumed: %+v", rows[0])
	}

	if _, err := q.Complete(1, doneRow(jobs[1])); err != nil {
		t.Fatal(err)
	}
	select {
	case <-q.Done():
	default:
		t.Fatal("queue not done")
	}

	// A fully-seeded queue is born done.
	all := map[string]litmus.SoakRun{
		jobs[0].Label(): doneRow(jobs[0]),
		jobs[1].Label(): doneRow(jobs[1]),
	}
	q2 := NewQueue(jobs, all, time.Minute, 3, clk.Now)
	select {
	case <-q2.Done():
	default:
		t.Fatal("fully-seeded queue not done at birth")
	}
}

func TestQueueRowsInterrupted(t *testing.T) {
	clk := newFakeClock()
	jobs := testJobs(2)
	q := NewQueue(jobs, nil, time.Minute, 3, clk.Now)
	if _, err := q.Complete(0, doneRow(jobs[0])); err != nil {
		t.Fatal(err)
	}
	rows := q.Rows() // campaign cut short: shard 1 never ran
	if rows[0].Interrupted || rows[1].Err == "" || !rows[1].Interrupted {
		t.Fatalf("partial rows = %+v, want row 1 interrupted", rows)
	}
}

func TestQueueWaitResultShutdown(t *testing.T) {
	clk := newFakeClock()
	q := NewQueue(testJobs(1), nil, time.Minute, 3, clk.Now)
	released := make(chan struct{})
	go func() {
		defer close(released)
		q.WaitResult(0) // would block forever without Shutdown
	}()
	q.Shutdown()
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("WaitResult did not unblock on Shutdown")
	}
}
