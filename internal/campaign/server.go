package campaign

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"c3/internal/litmus"
	"c3/internal/obs"
)

// Wire types of the coordinator protocol (all JSON over HTTP). Workers
// and coordinator must be built from the same code — the row-key
// suffix enforces this — so the protocol carries no compatibility
// machinery beyond the spec handshake.

// SpecResponse is GET /spec: the normalized sweep, its fingerprint, and
// the job count.
type SpecResponse struct {
	Spec   Spec   `json:"spec"`
	Suffix string `json:"suffix"`
	Jobs   int    `json:"jobs"`
}

// LeaseRequest is POST /lease.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse answers a granted lease. TTLMS is the renewal deadline:
// heartbeat well before it (the worker uses TTL/3).
type LeaseResponse struct {
	Job   Job    `json:"job"`
	Lease string `json:"lease"`
	TTLMS int64  `json:"ttl_ms"`
}

// HeartbeatRequest is POST /heartbeat: the worker's active leases.
type HeartbeatRequest struct {
	Worker string   `json:"worker"`
	Leases []string `json:"leases"`
}

// HeartbeatResponse lists which of those leases are still valid.
type HeartbeatResponse struct {
	Valid []string `json:"valid"`
}

// ResultRequest is POST /result: one completed shard row. RowKey must
// equal the coordinator's expected key for the job (label + suffix) —
// the content-address check that rejects mismatched binaries.
type ResultRequest struct {
	Worker string         `json:"worker"`
	Lease  string         `json:"lease"`
	JobID  int            `json:"job_id"`
	RowKey string         `json:"row_key"`
	Row    litmus.SoakRun `json:"row"`
}

// ReleaseRequest is POST /release: return a lease early. Penalty marks
// an internal worker error (counts toward quarantine); a graceful
// shutdown releases without penalty.
type ReleaseRequest struct {
	Worker  string `json:"worker"`
	Lease   string `json:"lease"`
	Penalty bool   `json:"penalty"`
}

// ResultEvent is one line of the GET /results JSONL stream: every
// accepted row, in acceptance order, closed when the campaign is over.
type ResultEvent struct {
	JobID  int            `json:"job_id"`
	Label  string         `json:"label"`
	RowKey string         `json:"row_key"`
	Row    litmus.SoakRun `json:"row"`
}

// WorkerStatus is one worker's liveness row in the /statusz snapshot.
type WorkerStatus struct {
	Name       string `json:"name"`
	LastSeenMS int64  `json:"last_seen_ms"`
	Leases     int    `json:"leases"`
	Results    int    `json:"results"`
}

// Statusz is the coordinator's GET /statusz document.
type Statusz struct {
	Tool     string          `json:"tool"`
	PID      int             `json:"pid"`
	Version  obs.VersionInfo `json:"version"`
	Start    time.Time       `json:"start"`
	UptimeMS int64           `json:"uptime_ms"`
	Suffix   string          `json:"suffix"`
	Spec     Spec            `json:"spec"`
	Jobs     QueueSnapshot   `json:"jobs"`
	Workers  []WorkerStatus  `json:"workers"`
	Done     bool            `json:"done"`
}

// ServerConfig parameterizes the coordinator.
type ServerConfig struct {
	Spec *Spec
	// LeaseTTL bounds each lease (default 30s): a worker that neither
	// heartbeats nor submits within it loses the shard.
	LeaseTTL time.Duration
	// MaxFailures is the quarantine budget (default 3): a shard whose
	// lease expires (or is penalty-released) more than this many times
	// becomes a loud error row instead of looping forever.
	MaxFailures int
	// LedgerPath, when non-empty, journals every accepted row as a
	// c3-run/v1 checkpoint record (the resume format) and the run record
	// on Close.
	LedgerPath string
	// Completed seeds the queue with rows replayed from the journal
	// (LoadCheckpoints) — the coordinator-restart path.
	Completed map[string]litmus.SoakRun
	// Now overrides the clock (tests).
	Now func() time.Time
	// Warnf sinks human-readable warnings (journal write failures,
	// rejected results); default stderr.
	Warnf func(format string, args ...any)
}

// Server is the campaign coordinator: the job queue behind an HTTP API.
// All protocol state lives in the Queue; the server adds transport,
// worker liveness, journaling, and the statusz/healthz endpoints.
type Server struct {
	cfg    ServerConfig
	spec   Spec
	suffix string
	jobs   []Job
	queue  *Queue
	start  time.Time

	ln     net.Listener
	srv    *http.Server
	served chan struct{}

	janitorStop chan struct{}
	janitorDead chan struct{}

	closeOnce sync.Once
	closeErr  error

	mu      sync.Mutex
	workers map[string]*workerInfo
	// accepted is the journal of accepted results in acceptance order,
	// feeding the /results stream.
	accepted []ResultEvent
}

type workerInfo struct {
	lastSeen time.Time
	leases   map[string]struct{}
	results  int
}

// StartServer expands cfg.Spec, builds the queue (seeded with replayed
// checkpoints), and serves the coordinator API on addr (":0" picks a
// free port).
func StartServer(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.Spec == nil {
		return nil, fmt.Errorf("campaign: ServerConfig.Spec is required")
	}
	if cfg.Warnf == nil {
		cfg.Warnf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "c3serve: "+format+"\n", args...)
		}
	}
	suffix, err := cfg.Spec.Suffix()
	if err != nil {
		return nil, err
	}
	jobs, err := cfg.Spec.Jobs()
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:         cfg,
		spec:        *cfg.Spec,
		suffix:      suffix,
		jobs:        jobs,
		queue:       NewQueue(jobs, cfg.Completed, cfg.LeaseTTL, cfg.MaxFailures, cfg.Now),
		start:       time.Now(),
		served:      make(chan struct{}),
		janitorStop: make(chan struct{}),
		janitorDead: make(chan struct{}),
		workers:     make(map[string]*workerInfo),
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("campaign: listen %s: %w", addr, err)
	}
	s.ln = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", obs.HealthzHandler("c3serve", s.start))
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/spec", s.handleSpec)
	mux.HandleFunc("/lease", s.handleLease)
	mux.HandleFunc("/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("/result", s.handleResult)
	mux.HandleFunc("/release", s.handleRelease)
	mux.HandleFunc("/results", s.handleResults)
	mux.HandleFunc("/report", s.handleReport)
	s.srv = &http.Server{Handler: mux}
	go func() {
		defer close(s.served)
		s.srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	}()

	// Janitor: expire stale leases even when no request traffic arrives
	// (all workers dead). Quarter-TTL keeps requeue latency well under
	// one TTL without busy-polling.
	ttl := cfg.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	go func() {
		defer close(s.janitorDead)
		tick := time.NewTicker(ttl / 4)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				s.queue.ExpireStale()
			case <-s.janitorStop:
				return
			}
		}
	}()
	return s, nil
}

// Addr reports the bound address ("127.0.0.1:43817").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Queue exposes the underlying queue (tests, Wait loops).
func (s *Server) Queue() *Queue { return s.queue }

// Suffix is the coordinator's row-key fingerprint.
func (s *Server) Suffix() string { return s.suffix }

// Done reports the channel closed when every shard is terminal.
func (s *Server) Done() <-chan struct{} { return s.queue.Done() }

// Report assembles the merged campaign report — in canonical job order,
// rendered by the same SoakReport.Render a single-process run uses, so
// a completed campaign's report is byte-identical to it.
func (s *Server) Report() *litmus.SoakReport {
	return &litmus.SoakReport{Runs: s.queue.Rows()}
}

// Close stops serving and joins the accept and janitor goroutines.
// Result streamers blocked on an unfinished campaign are unblocked
// first, so a shutdown leaks nothing. Safe to call more than once.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.queue.Shutdown()
		close(s.janitorStop)
		s.closeErr = s.srv.Close()
		<-s.served
		<-s.janitorDead
	})
	return s.closeErr
}

// touchWorker updates the liveness registry from any worker request.
func (s *Server) touchWorker(name string, mut func(*workerInfo)) {
	if name == "" {
		name = "(anonymous)"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.workers[name]
	if w == nil {
		w = &workerInfo{leases: make(map[string]struct{})}
		s.workers[name] = w
	}
	w.lastSeen = time.Now()
	if mut != nil {
		mut(w)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func (s *Server) handleSpec(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, SpecResponse{Spec: s.spec, Suffix: s.suffix, Jobs: len(s.jobs)})
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	job, lease, ok, done := s.queue.Lease(req.Worker)
	if done {
		// 410: the campaign is over; workers exit.
		http.Error(w, "campaign complete", http.StatusGone)
		return
	}
	if !ok {
		// 204: nothing leasable right now (backoff gates, all in
		// flight); poll again shortly.
		w.WriteHeader(http.StatusNoContent)
		return
	}
	s.touchWorker(req.Worker, func(wi *workerInfo) { wi.leases[lease.ID] = struct{}{} })
	writeJSON(w, LeaseResponse{Job: job, Lease: lease.ID, TTLMS: lease.TTL.Milliseconds()})
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	valid := s.queue.Heartbeat(req.Worker, req.Leases)
	s.touchWorker(req.Worker, func(wi *workerInfo) {
		for id := range wi.leases {
			delete(wi.leases, id)
		}
		for _, id := range valid {
			wi.leases[id] = struct{}{}
		}
	})
	writeJSON(w, HeartbeatResponse{Valid: valid})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	var req ResultRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.JobID < 0 || req.JobID >= len(s.jobs) {
		http.Error(w, fmt.Sprintf("unknown job %d", req.JobID), http.StatusBadRequest)
		return
	}
	job := s.jobs[req.JobID]
	// Content-address check: the submitted key must be the one this
	// coordinator's binary computes. A mismatch means the worker runs
	// different code — merging its row could silently break the
	// byte-identical guarantee, so reject loudly and let the lease
	// expire back into the queue.
	want := job.RowKey(s.suffix)
	if req.RowKey != want {
		s.cfg.Warnf("rejecting result for %s from worker %q: row key %q != %q (mismatched binary?)",
			job.Label(), req.Worker, req.RowKey, want)
		http.Error(w, "row key mismatch: worker binary differs from coordinator", http.StatusConflict)
		return
	}
	if req.Row.Interrupted {
		http.Error(w, "interrupted rows carry no verdict; release the lease instead", http.StatusBadRequest)
		return
	}
	first, err := s.queue.Complete(req.JobID, req.Row)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.touchWorker(req.Worker, func(wi *workerInfo) {
		delete(wi.leases, req.Lease)
		wi.results++
	})
	if first {
		// Journal before acknowledging: once the worker sees 200 the row
		// must survive a coordinator restart. (Losing the append on a
		// crash is safe the other way — the shard just re-runs.)
		if s.cfg.LedgerPath != "" {
			if err := AppendRowRecord(s.cfg.LedgerPath, "c3serve", want, req.Row); err != nil {
				s.cfg.Warnf("journal: %v", err)
			}
		}
		s.mu.Lock()
		s.accepted = append(s.accepted, ResultEvent{
			JobID: req.JobID, Label: job.Label(), RowKey: want, Row: req.Row,
		})
		s.mu.Unlock()
	}
	writeJSON(w, map[string]bool{"accepted": true, "first": first})
}

func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req ReleaseRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	found := s.queue.Release(req.Lease, req.Penalty)
	s.touchWorker(req.Worker, func(wi *workerInfo) { delete(wi.leases, req.Lease) })
	writeJSON(w, map[string]bool{"released": found})
}

// handleResults streams every accepted row as JSONL: first the backlog,
// then live rows as they arrive, ending when the campaign is over. This
// is the "streaming result delivery" surface — a consumer tailing it
// sees each shard's row once, in acceptance order, without polling.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sent := 0
	seq := uint64(0)
	for {
		s.mu.Lock()
		backlog := s.accepted[sent:]
		s.mu.Unlock()
		for i := range backlog {
			if err := enc.Encode(&backlog[i]); err != nil {
				return // client went away
			}
			sent++
		}
		if flusher != nil {
			flusher.Flush()
		}
		var done bool
		seq, done = s.queue.WaitResult(seq)
		if done {
			// Drain anything accepted between the snapshot and WaitResult.
			s.mu.Lock()
			tail := s.accepted[sent:]
			s.mu.Unlock()
			for i := range tail {
				if err := enc.Encode(&tail[i]); err != nil {
					return
				}
				sent++
			}
			return
		}
		select {
		case <-r.Context().Done():
			return
		default:
		}
	}
}

// handleReport serves the merged report: 200 with the rendered table
// when the campaign is complete, 409 with current progress otherwise.
func (s *Server) handleReport(w http.ResponseWriter, _ *http.Request) {
	select {
	case <-s.queue.Done():
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, s.Report().Render()) //nolint:errcheck
	default:
		snap := s.queue.Snapshot()
		http.Error(w, fmt.Sprintf("campaign in flight: %d/%d shards done", snap.Done+snap.Quarantined, snap.Total),
			http.StatusConflict)
	}
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	now := time.Now()
	st := Statusz{
		Tool:     "c3serve",
		PID:      os.Getpid(),
		Version:  obs.Version(),
		Start:    s.start,
		UptimeMS: now.Sub(s.start).Milliseconds(),
		Suffix:   s.suffix,
		Spec:     s.spec,
		Jobs:     s.queue.Snapshot(),
	}
	select {
	case <-s.queue.Done():
		st.Done = true
	default:
	}
	s.mu.Lock()
	names := make([]string, 0, len(s.workers))
	for n := range s.workers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		wi := s.workers[n]
		st.Workers = append(st.Workers, WorkerStatus{
			Name:       n,
			LastSeenMS: now.Sub(wi.lastSeen).Milliseconds(),
			Leases:     len(wi.leases),
			Results:    wi.results,
		})
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(st) //nolint:errcheck
}
