package campaign

import (
	"fmt"
	"sync"
	"time"

	"c3/internal/litmus"
)

// Queue defaults; ServerConfig overrides them.
const (
	DefaultLeaseTTL    = 30 * time.Second
	DefaultMaxFailures = 3

	// Requeue backoff after a lease failure: base << (failures-1), capped.
	// The backoff gates when an unhealthy shard may be leased again; it
	// never delays healthy shards (the queue hands out the lowest eligible
	// job ID, skipping gated ones).
	requeueBackoffBase = 250 * time.Millisecond
	requeueBackoffCap  = 30 * time.Second
)

// jobState is the lease state machine:
//
//	Pending ──lease──▶ Leased ──result──▶ Done            (terminal)
//	   ▲                  │
//	   │   expiry/release │ failures ≤ max: backoff gate
//	   └──────────────────┤
//	                      │ failures > max
//	                      ▼
//	                 Quarantined                          (terminal)
//
// Done is absorbing: a late result for an already-Done job (the lease
// expired but the worker finished anyway — at-least-once) is
// acknowledged and dropped; seed determinism makes the duplicate row
// byte-identical, so which submission wins is unobservable.
type jobState uint8

const (
	statePending jobState = iota
	stateLeased
	stateDone
	stateQuarantined
)

func (s jobState) String() string {
	switch s {
	case statePending:
		return "pending"
	case stateLeased:
		return "leased"
	case stateDone:
		return "done"
	case stateQuarantined:
		return "quarantined"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// slot is one job's queue entry.
type slot struct {
	job      Job
	state    jobState
	failures int       // lease expiries + penalized releases
	gate     time.Time // not leasable before this (requeue backoff)

	leaseID string
	worker  string
	expiry  time.Time

	row *litmus.SoakRun // set when Done (nil row for quarantined)
	// quarantine detail, for the report's error row
	lastWorker string
}

// Queue is the coordinator's shard queue: jobs, leases, and completed
// rows, with all transitions under one lock. It is deliberately free of
// I/O — journaling and HTTP live in Server — so the state machine is
// directly unit-testable with a fake clock.
type Queue struct {
	mu    sync.Mutex
	slots []*slot
	now   func() time.Time

	leaseTTL    time.Duration
	maxFailures int

	leaseSeq  uint64
	doneCount int // Done + Quarantined
	expiries  uint64
	requeues  uint64

	// doneCh closes when every job is terminal.
	doneCh    chan struct{}
	closeOnce sync.Once
	// shutdown marks the owning server closing: result waiters unblock
	// even though the campaign is unfinished.
	shutdown bool

	// resultSeq bumps on every accepted result; waiters (the /results
	// stream) block on cond.
	cond      *sync.Cond
	resultSeq uint64
}

// NewQueue builds the queue for jobs. completed seeds terminal rows
// replayed from the journal (keyed by job label); those shards are born
// Done and never leased.
func NewQueue(jobs []Job, completed map[string]litmus.SoakRun, leaseTTL time.Duration, maxFailures int, now func() time.Time) *Queue {
	if leaseTTL <= 0 {
		leaseTTL = DefaultLeaseTTL
	}
	if maxFailures <= 0 {
		maxFailures = DefaultMaxFailures
	}
	if now == nil {
		now = time.Now
	}
	q := &Queue{
		now:         now,
		leaseTTL:    leaseTTL,
		maxFailures: maxFailures,
		doneCh:      make(chan struct{}),
	}
	q.cond = sync.NewCond(&q.mu)
	for _, j := range jobs {
		s := &slot{job: j}
		if row, ok := completed[j.Label()]; ok {
			r := row
			r.Resumed = true
			s.state = stateDone
			s.row = &r
			q.doneCount++
		}
		q.slots = append(q.slots, s)
	}
	if q.doneCount == len(q.slots) {
		q.closeDone()
	}
	return q
}

func (q *Queue) closeDone() {
	q.closeOnce.Do(func() { close(q.doneCh) })
	q.cond.Broadcast()
}

// Lease hands worker the lowest-ID eligible shard under a fresh lease,
// or reports (zero, false, done) when nothing is leasable right now.
// done distinguishes "come back later" (backoff gates, all leased) from
// "the campaign is over" — workers exit on done.
func (q *Queue) Lease(worker string) (Job, Lease, bool, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked()
	now := q.now()
	for _, s := range q.slots {
		if s.state != statePending || now.Before(s.gate) {
			continue
		}
		q.leaseSeq++
		s.state = stateLeased
		s.leaseID = fmt.Sprintf("L%d", q.leaseSeq)
		s.worker = worker
		s.expiry = now.Add(q.leaseTTL)
		return s.job, Lease{ID: s.leaseID, TTL: q.leaseTTL}, true, false
	}
	return Job{}, Lease{}, false, q.doneCount == len(q.slots)
}

// Lease is the worker's claim on a shard: renew it via Heartbeat before
// TTL elapses or the shard is requeued.
type Lease struct {
	ID  string        `json:"id"`
	TTL time.Duration `json:"ttl"`
}

// Heartbeat renews worker's listed leases and returns the IDs still
// valid. A lease that already expired (and was requeued, possibly to
// another worker) is not resurrected — its absence from the reply tells
// the worker its result may be redundant, though submitting it anyway
// is harmless.
func (q *Queue) Heartbeat(worker string, leaseIDs []string) []string {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked()
	now := q.now()
	var valid []string
	for _, id := range leaseIDs {
		for _, s := range q.slots {
			if s.state == stateLeased && s.leaseID == id && s.worker == worker {
				s.expiry = now.Add(q.leaseTTL)
				valid = append(valid, id)
				break
			}
		}
	}
	return valid
}

// Complete records a shard's result row. It reports whether this was
// the first completion (callers journal exactly the first). Late and
// duplicate submissions are acknowledged and dropped; results for
// quarantined shards un-quarantine them (the work did finish — the row
// is better than an error). The lease need not still be valid:
// at-least-once means "whoever finishes, finishes".
func (q *Queue) Complete(jobID int, row litmus.SoakRun) (first bool, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if jobID < 0 || jobID >= len(q.slots) {
		return false, fmt.Errorf("campaign: result for unknown job %d", jobID)
	}
	s := q.slots[jobID]
	if s.state == stateDone {
		return false, nil
	}
	if s.state != stateQuarantined {
		// Pending or Leased count toward doneCount now; Quarantined
		// already did.
		q.doneCount++
	}
	s.state = stateDone
	r := row
	s.row = &r
	s.leaseID, s.worker = "", ""
	q.resultSeq++
	q.cond.Broadcast()
	if q.doneCount == len(q.slots) {
		q.closeDone()
	}
	return true, nil
}

// Release returns a leased shard to the queue before its lease expires:
// a worker shutting down gracefully (penalty=false, immediate requeue)
// or one that hit an internal error (penalty=true, counts toward
// quarantine like an expiry).
func (q *Queue) Release(leaseID string, penalty bool) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, s := range q.slots {
		if s.state == stateLeased && s.leaseID == leaseID {
			if penalty {
				q.failLocked(s)
			} else {
				s.state = statePending
				s.gate = time.Time{}
				s.leaseID, s.worker = "", ""
				q.requeues++
			}
			return true
		}
	}
	return false
}

// ExpireStale requeues every lease past its deadline (normally driven
// by the janitor ticker; also run lazily inside Lease/Heartbeat so a
// quiet queue still makes progress).
func (q *Queue) ExpireStale() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.expireLocked()
}

func (q *Queue) expireLocked() int {
	now := q.now()
	n := 0
	for _, s := range q.slots {
		if s.state == stateLeased && now.After(s.expiry) {
			q.expiries++
			q.failLocked(s)
			n++
		}
	}
	return n
}

// failLocked applies one lease failure to s: requeue under backoff, or
// quarantine past the budget.
func (q *Queue) failLocked(s *slot) {
	s.failures++
	s.lastWorker = s.worker
	s.leaseID, s.worker = "", ""
	if s.failures > q.maxFailures {
		s.state = stateQuarantined
		q.doneCount++
		q.resultSeq++
		q.cond.Broadcast()
		if q.doneCount == len(q.slots) {
			q.closeDone()
		}
		return
	}
	backoff := requeueBackoffBase << (s.failures - 1)
	if backoff > requeueBackoffCap {
		backoff = requeueBackoffCap
	}
	s.state = statePending
	s.gate = q.now().Add(backoff)
	q.requeues++
}

// Done reports the channel closed when every shard is terminal.
func (q *Queue) Done() <-chan struct{} { return q.doneCh }

// Rows assembles the merged report rows in canonical job order: result
// rows verbatim, quarantined shards as loud error rows, and — when the
// campaign was cut short (coordinator interrupt) — unfinished shards as
// INTERRUPTED rows, mirroring the single-process partial report.
func (q *Queue) Rows() []litmus.SoakRun {
	q.mu.Lock()
	defer q.mu.Unlock()
	rows := make([]litmus.SoakRun, len(q.slots))
	for i, s := range q.slots {
		switch {
		case s.row != nil:
			rows[i] = *s.row
		case s.state == stateQuarantined:
			rows[i] = litmus.SoakRun{
				Test: s.job.Test, Plan: s.job.Plan.Name, Seed: s.job.Seed,
				Err: fmt.Sprintf("quarantined: %d lease failures (last worker %q)", s.failures, s.lastWorker),
			}
		default:
			rows[i] = litmus.SoakRun{
				Test: s.job.Test, Plan: s.job.Plan.Name, Seed: s.job.Seed,
				Interrupted: true,
				Err:         "interrupted before shard completed",
			}
		}
	}
	return rows
}

// ResultSeq returns the current accepted-result sequence number;
// WaitResult blocks until the sequence passes seq or the queue is
// fully terminal, returning the new sequence and whether the campaign
// is over. The /results stream drives on this.
func (q *Queue) ResultSeq() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.resultSeq
}

func (q *Queue) WaitResult(seq uint64) (uint64, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.resultSeq <= seq && q.doneCount != len(q.slots) && !q.shutdown {
		q.cond.Wait()
	}
	return q.resultSeq, q.doneCount == len(q.slots) || q.shutdown
}

// Shutdown unblocks every result waiter (server close with the campaign
// unfinished); the queue's job state is untouched.
func (q *Queue) Shutdown() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.shutdown = true
	q.cond.Broadcast()
}

// QueueSnapshot is the wire form of queue state for /statusz.
type QueueSnapshot struct {
	Total       int    `json:"total"`
	Pending     int    `json:"pending"`
	Leased      int    `json:"leased"`
	Done        int    `json:"done"`
	Quarantined int    `json:"quarantined"`
	Expiries    uint64 `json:"lease_expiries"`
	Requeues    uint64 `json:"requeues"`
}

// Snapshot captures current queue counts.
func (q *Queue) Snapshot() QueueSnapshot {
	q.mu.Lock()
	defer q.mu.Unlock()
	snap := QueueSnapshot{Total: len(q.slots), Expiries: q.expiries, Requeues: q.requeues}
	for _, s := range q.slots {
		switch s.state {
		case statePending:
			snap.Pending++
		case stateLeased:
			snap.Leased++
		case stateDone:
			snap.Done++
		case stateQuarantined:
			snap.Quarantined++
		}
	}
	return snap
}
