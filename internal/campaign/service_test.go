package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"c3/internal/cpu"
	"c3/internal/litmus"
)

// testSpec is a small sweep (2 tests x 1 plan x 2 seeds = 4 shards)
// that runs in well under a second per shard.
func testSpec(t *testing.T, tests []string, seeds []int64) *Spec {
	t.Helper()
	m, err := cpu.ParseMCM("arm")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := NewSpec(tests, []string{"light"}, seeds, 4,
		[2]string{"mesi", "mesi"}, "cxl", [2]cpu.MCM{m, m}, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// singleProcessReport runs the same sweep through the plain litmus
// engine — the byte-identity reference.
func singleProcessReport(t *testing.T, spec *Spec) *litmus.SoakReport {
	t.Helper()
	cfg, err := spec.SoakConfig()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := litmus.RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func startTestServer(t *testing.T, cfg ServerConfig) *Server {
	t.Helper()
	if cfg.Warnf == nil {
		cfg.Warnf = t.Logf
	}
	srv, err := StartServer("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// runWorkers joins n in-process workers and waits for them all to exit.
func runWorkers(t *testing.T, coordinator string, n int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = RunWorker(WorkerConfig{
				Coordinator:  coordinator,
				Name:         fmt.Sprintf("w%d", i),
				Poll:         20 * time.Millisecond,
				ProbeTimeout: 5 * time.Second,
				Logf:         func(string, ...any) {},
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
}

func postJSON(t *testing.T, url string, req any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	return resp, buf.Bytes()
}

// TestDistributedMatchesSingleProcess is the tentpole guarantee: at any
// worker count the merged coordinator report is byte-identical to an
// uninterrupted single-process run of the same spec.
func TestDistributedMatchesSingleProcess(t *testing.T) {
	spec := testSpec(t, []string{"MP", "SB"}, []int64{1, 2})
	want := singleProcessReport(t, spec).Render()

	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			srv := startTestServer(t, ServerConfig{Spec: spec})
			runWorkers(t, "http://"+srv.Addr(), workers)
			select {
			case <-srv.Done():
			case <-time.After(60 * time.Second):
				t.Fatal("campaign did not complete")
			}
			got := srv.Report().Render()
			if got != want {
				t.Errorf("distributed report differs from single-process:\n--- single\n%s\n--- distributed\n%s", want, got)
			}

			// /report serves the same bytes over HTTP.
			resp, err := http.Get("http://" + srv.Addr() + "/report")
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || buf.String() != want {
				t.Errorf("/report: status %d, bytes match: %v", resp.StatusCode, buf.String() == want)
			}
		})
	}
}

// TestAbandonedLeaseReassignment kills a worker the hard way: a raw
// lease is taken and never heartbeated, so it expires and the shard is
// reassigned to a live worker. The report must still match the
// single-process reference.
func TestAbandonedLeaseReassignment(t *testing.T) {
	spec := testSpec(t, []string{"MP"}, []int64{1})
	want := singleProcessReport(t, spec).Render()

	srv := startTestServer(t, ServerConfig{
		Spec:        spec,
		LeaseTTL:    100 * time.Millisecond,
		MaxFailures: 5,
	})
	base := "http://" + srv.Addr()

	// The doomed worker: leases the only shard, then vanishes.
	resp, body := postJSON(t, base+"/lease", &LeaseRequest{Worker: "doomed"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/lease: %d %s", resp.StatusCode, body)
	}
	var lease LeaseResponse
	if err := json.Unmarshal(body, &lease); err != nil {
		t.Fatal(err)
	}
	if lease.Job.ID != 0 {
		t.Fatalf("leased job %d, want 0", lease.Job.ID)
	}

	// A live worker takes over after expiry + backoff.
	runWorkers(t, base, 1)
	select {
	case <-srv.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("campaign did not complete after lease reassignment")
	}
	if got := srv.Report().Render(); got != want {
		t.Errorf("report after reassignment differs:\n--- want\n%s\n--- got\n%s", want, got)
	}
	if snap := srv.Queue().Snapshot(); snap.Expiries < 1 {
		t.Errorf("snapshot %+v, want at least one lease expiry", snap)
	}
}

// TestQuarantineErrorRow starves a shard of a healthy worker entirely:
// every lease is taken and abandoned until the failure budget runs out
// and the shard lands in the report as a loud error row.
func TestQuarantineErrorRow(t *testing.T) {
	spec := testSpec(t, []string{"MP"}, []int64{1})
	srv := startTestServer(t, ServerConfig{
		Spec:        spec,
		LeaseTTL:    50 * time.Millisecond,
		MaxFailures: 1,
	})
	base := "http://" + srv.Addr()

	deadline := time.After(30 * time.Second)
	for {
		select {
		case <-srv.Done():
		case <-deadline:
			t.Fatal("shard never quarantined")
		default:
		}
		resp, _ := postJSON(t, base+"/lease", &LeaseRequest{Worker: "flaky"})
		if resp.StatusCode == http.StatusGone {
			break // campaign over: quarantine happened
		}
		time.Sleep(20 * time.Millisecond) // hold or retry; never heartbeat
	}
	select {
	case <-srv.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("queue not done after quarantine")
	}

	rep := srv.Report()
	if len(rep.Runs) != 1 || !strings.Contains(rep.Runs[0].Err, "quarantined:") {
		t.Fatalf("report rows = %+v, want one quarantine error row", rep.Runs)
	}
	if rep.Verdict() == "pass" {
		t.Fatal("quarantined campaign must not pass")
	}
	if snap := srv.Queue().Snapshot(); snap.Quarantined != 1 {
		t.Errorf("snapshot %+v, want Quarantined=1", snap)
	}
}

// TestCoordinatorRestartResume replays the journal across a coordinator
// restart: rows accepted before the crash are not re-run, and the final
// report is byte-identical to an uninterrupted single-process run.
func TestCoordinatorRestartResume(t *testing.T) {
	spec := testSpec(t, []string{"MP", "SB"}, []int64{1, 2})
	ref := singleProcessReport(t, spec)
	want := ref.Render()
	ledger := filepath.Join(t.TempDir(), "ledger.jsonl")

	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}

	// First coordinator: accepts two rows (journaled), then "crashes"
	// (Close with the campaign unfinished).
	srv1 := startTestServer(t, ServerConfig{Spec: spec, LedgerPath: ledger})
	base := "http://" + srv1.Addr()
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, base+"/result", &ResultRequest{
			Worker: "w0",
			JobID:  jobs[i].ID,
			RowKey: jobs[i].RowKey(srv1.Suffix()),
			Row:    ref.Runs[i],
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit row %d: %d %s", i, resp.StatusCode, body)
		}
	}
	suffix := srv1.Suffix()
	srv1.Close()

	// Restart: the journal seeds the queue; only the remaining shards
	// are leased out.
	completed, stats, err := LoadCheckpoints(ledger, suffix)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped != 0 {
		t.Fatalf("journal replay skipped %d records: %v", stats.Skipped, stats.Warnings)
	}
	if len(completed) != 2 {
		t.Fatalf("journal replay found %d rows, want 2", len(completed))
	}

	srv2 := startTestServer(t, ServerConfig{Spec: spec, LedgerPath: ledger, Completed: completed})
	if snap := srv2.Queue().Snapshot(); snap.Done != 2 || snap.Pending != 2 {
		t.Fatalf("restarted queue %+v, want Done=2 Pending=2", snap)
	}
	runWorkers(t, "http://"+srv2.Addr(), 2)
	select {
	case <-srv2.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("resumed campaign did not complete")
	}
	if got := srv2.Report().Render(); got != want {
		t.Errorf("resumed report differs from single-process:\n--- want\n%s\n--- got\n%s", want, got)
	}
}

// TestResultsStream tails GET /results while workers run: every
// accepted row appears exactly once and the stream ends when the
// campaign does.
func TestResultsStream(t *testing.T) {
	spec := testSpec(t, []string{"MP", "SB"}, []int64{1, 2})
	srv := startTestServer(t, ServerConfig{Spec: spec})
	base := "http://" + srv.Addr()

	type streamed struct {
		events []ResultEvent
		err    error
	}
	got := make(chan streamed, 1)
	go func() {
		resp, err := http.Get(base + "/results")
		if err != nil {
			got <- streamed{err: err}
			return
		}
		defer resp.Body.Close()
		var evs []ResultEvent
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var ev ResultEvent
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				got <- streamed{err: err}
				return
			}
			evs = append(evs, ev)
		}
		got <- streamed{events: evs, err: sc.Err()}
	}()

	runWorkers(t, base, 2)
	select {
	case s := <-got:
		if s.err != nil {
			t.Fatal(s.err)
		}
		if len(s.events) != 4 {
			t.Fatalf("stream delivered %d events, want 4: %+v", len(s.events), s.events)
		}
		seen := make(map[int]bool)
		for _, ev := range s.events {
			if seen[ev.JobID] {
				t.Errorf("job %d streamed twice", ev.JobID)
			}
			seen[ev.JobID] = true
			if !strings.HasPrefix(ev.RowKey, ev.Label+"|") {
				t.Errorf("event row key %q does not extend label %q", ev.RowKey, ev.Label)
			}
		}
	case <-time.After(60 * time.Second):
		t.Fatal("/results stream did not terminate after campaign completion")
	}
}

// TestResultRejections exercises the coordinator's input validation:
// mismatched row keys (a worker built from different code), interrupted
// rows, and unknown jobs are all rejected.
func TestResultRejections(t *testing.T) {
	spec := testSpec(t, []string{"MP"}, []int64{1})
	var warnings []string
	var mu sync.Mutex
	srv := startTestServer(t, ServerConfig{
		Spec: spec,
		Warnf: func(format string, args ...any) {
			mu.Lock()
			warnings = append(warnings, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	})
	base := "http://" + srv.Addr()
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	row := litmus.SoakRun{Test: "MP", Plan: "light", Seed: 1, Iters: 4}

	resp, _ := postJSON(t, base+"/result", &ResultRequest{
		JobID: 0, RowKey: jobs[0].Label() + "|some-other-binary", Row: row,
	})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("mismatched row key: status %d, want 409", resp.StatusCode)
	}
	mu.Lock()
	warned := len(warnings) > 0 && strings.Contains(warnings[0], "mismatched binary")
	mu.Unlock()
	if !warned {
		t.Errorf("row-key mismatch did not warn: %v", warnings)
	}

	interrupted := row
	interrupted.Interrupted = true
	resp, _ = postJSON(t, base+"/result", &ResultRequest{
		JobID: 0, RowKey: jobs[0].RowKey(srv.Suffix()), Row: interrupted,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("interrupted row: status %d, want 400", resp.StatusCode)
	}

	resp, _ = postJSON(t, base+"/result", &ResultRequest{
		JobID: 99, RowKey: "whatever", Row: row,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown job: status %d, want 400", resp.StatusCode)
	}

	// Nothing was accepted: the queue is untouched.
	if snap := srv.Queue().Snapshot(); snap.Done != 0 {
		t.Errorf("snapshot %+v after rejected submissions, want Done=0", snap)
	}
}

// TestWorkerInterrupt: a worker interrupted mid-campaign releases its
// leases (no penalty) and reports ErrWorkerInterrupted; a second worker
// finishes the campaign and the report is still byte-identical.
func TestWorkerInterrupt(t *testing.T) {
	spec := testSpec(t, []string{"MP", "SB"}, []int64{1, 2})
	want := singleProcessReport(t, spec).Render()
	srv := startTestServer(t, ServerConfig{Spec: spec})
	base := "http://" + srv.Addr()

	interrupt := make(chan struct{})
	close(interrupt) // interrupted before it leases anything
	err := RunWorker(WorkerConfig{
		Coordinator:  base,
		Name:         "doomed",
		Poll:         20 * time.Millisecond,
		ProbeTimeout: 5 * time.Second,
		Interrupt:    interrupt,
		Logf:         func(string, ...any) {},
	})
	if err != ErrWorkerInterrupted {
		t.Fatalf("interrupted worker returned %v, want ErrWorkerInterrupted", err)
	}

	runWorkers(t, base, 1)
	select {
	case <-srv.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("campaign did not complete")
	}
	if got := srv.Report().Render(); got != want {
		t.Errorf("report differs after interrupted worker:\n--- want\n%s\n--- got\n%s", want, got)
	}
}

// TestStatuszWorkers checks the coordinator's liveness registry: a
// worker that has leased and submitted shows up with its result count.
func TestStatuszWorkers(t *testing.T) {
	spec := testSpec(t, []string{"MP"}, []int64{1})
	srv := startTestServer(t, ServerConfig{Spec: spec})
	base := "http://" + srv.Addr()
	runWorkers(t, base, 1)

	resp, err := http.Get(base + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Statusz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Tool != "c3serve" || !st.Done || st.Jobs.Done != 1 {
		t.Fatalf("statusz %+v, want done c3serve with 1 done job", st)
	}
	found := false
	for _, w := range st.Workers {
		if w.Name == "w0" && w.Results == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("statusz workers %+v, want w0 with 1 result", st.Workers)
	}
}
