// Package campaign is the fault-tolerant distributed layer of the soak
// sweep: a coordinator that expands a sweep spec into a shard-by-seed
// job queue, hands shards to worker processes under time-bounded
// leases, tracks worker liveness via heartbeats, and merges streamed
// results into a report byte-identical to a single-process c3soak run.
//
// The robustness argument, end to end:
//
//   - At-least-once execution. A lease that expires (worker killed,
//     hung, or partitioned) requeues its shard with capped exponential
//     backoff; after MaxFailures expiries the shard is quarantined as a
//     loud error row instead of looping forever. A worker that was
//     merely slow may still finish and submit — duplicates are safe
//     because every shard is seed-deterministic: any executor produces
//     the same row bytes, and the coordinator keeps only the first.
//
//   - Content-addressed dedup. Results are keyed by the c3-run/v1
//     row_key — "<test>/<plan>/seed<seed>|<config+code fingerprint>" —
//     the exact key the single-process resume cache uses. The
//     coordinator rejects results whose fingerprint suffix differs from
//     its own (a mismatched worker binary), so a merged report can only
//     contain rows the coordinator's own binary would have produced.
//
//   - Durable journal = the ledger. Every accepted row is appended to
//     the same O_APPEND JSONL ledger c3soak checkpoints into, before it
//     is acknowledged. A coordinator restart replays the journal
//     through the lenient reader (torn-tail tolerant) and re-queues
//     only the missing shards; `c3soak -resume` can equally finish a
//     sweep a dead coordinator started, and vice versa.
//
//   - Byte-identical merge. Shards are expanded by litmus.Campaigns in
//     the same canonical order RunSoak uses, results are slotted by job
//     ID, and the final table is rendered by the same SoakReport.Render
//     — so at any worker count, any kill schedule, and across
//     coordinator restarts, a completed campaign's report is
//     byte-identical to an uninterrupted single-process run.
package campaign

import (
	"fmt"
	"time"

	"c3/internal/cpu"
	"c3/internal/faults"
	"c3/internal/litmus"
	"c3/internal/obs"
)

// PlanRef is the wire form of a fault plan: the display name reports
// use ("light", or the raw spec when unnamed) plus the parseable spec
// string, which round-trips through faults.ParsePlan on the worker.
type PlanRef struct {
	Name string `json:"name"`
	Spec string `json:"spec"`
}

// Spec is the wire form of a sweep: everything a worker needs to run
// any shard of it. It is always exchanged normalized (defaults applied,
// MCMs canonical), so coordinator and workers agree on the job list and
// on the row-key fingerprint byte-for-byte.
type Spec struct {
	Tests  []string  `json:"tests"`
	Plans  []PlanRef `json:"plans"`
	Seeds  []int64   `json:"seeds"`
	Iters  int       `json:"iters"`
	Locals [2]string `json:"locals"`
	Global string    `json:"global"`
	MCMs   [2]string `json:"mcms"`
	// TaskTimeoutMS / Retries are the per-attempt budget every worker
	// applies (see litmus.SoakConfig); milliseconds so the JSON is
	// human-auditable.
	TaskTimeoutMS int64 `json:"task_timeout_ms,omitempty"`
	Retries       int   `json:"retries,omitempty"`
}

// NewSpec normalizes a sweep description into a Spec: defaults applied,
// plan specs resolved (preset names or raw fault specs), MCM names
// canonicalized. The plans keep their given names for report rows.
func NewSpec(tests []string, planSpecs []string, seeds []int64, iters int,
	locals [2]string, global string, mcms [2]cpu.MCM,
	taskTimeout time.Duration, retries int) (*Spec, error) {

	base := litmus.SoakConfig{Tests: tests, Seeds: seeds, Iters: iters,
		Locals: locals, Global: global}.WithDefaults()

	var plans []PlanRef
	if len(planSpecs) == 0 {
		for _, p := range litmus.DefaultPlans() {
			plans = append(plans, PlanRef{Name: p.Name, Spec: p.Plan.String()})
		}
	}
	for _, s := range planSpecs {
		if p, ok := litmus.PlanByName(s); ok {
			plans = append(plans, PlanRef{Name: p.Name, Spec: p.Plan.String()})
			continue
		}
		p, err := faults.ParsePlan(s)
		if err != nil {
			return nil, fmt.Errorf("campaign: fault plan %q: %w", s, err)
		}
		plans = append(plans, PlanRef{Name: s, Spec: p.String()})
	}

	spec := &Spec{
		Tests:   base.Tests,
		Plans:   plans,
		Seeds:   base.Seeds,
		Iters:   base.Iters,
		Locals:  base.Locals,
		Global:  base.Global,
		MCMs:    [2]string{mcms[0].String(), mcms[1].String()},
		Retries: retries,
	}
	if taskTimeout > 0 {
		spec.TaskTimeoutMS = taskTimeout.Milliseconds()
	}
	if _, err := spec.SoakConfig(); err != nil { // validate tests/plans/MCMs now
		return nil, err
	}
	return spec, nil
}

// parseMCMs decodes the canonical MCM names back to cpu values.
func (s *Spec) parseMCMs() ([2]cpu.MCM, error) {
	var out [2]cpu.MCM
	for i, name := range s.MCMs {
		m, err := cpu.ParseMCM(name)
		if err != nil {
			return out, fmt.Errorf("campaign: %w", err)
		}
		out[i] = m
	}
	return out, nil
}

// parsePlanRef decodes one wire plan back to litmus form.
func parsePlanRef(p PlanRef) (litmus.NamedPlan, error) {
	plan, err := faults.ParsePlan(p.Spec)
	if err != nil {
		return litmus.NamedPlan{}, fmt.Errorf("campaign: plan %q (%q): %w", p.Name, p.Spec, err)
	}
	return litmus.NamedPlan{Name: p.Name, Plan: plan}, nil
}

// namedPlans decodes the wire plans back to litmus form.
func (s *Spec) namedPlans() ([]litmus.NamedPlan, error) {
	var out []litmus.NamedPlan
	for _, p := range s.Plans {
		np, err := parsePlanRef(p)
		if err != nil {
			return nil, err
		}
		out = append(out, np)
	}
	return out, nil
}

// SoakConfig materializes the spec as the litmus sweep config a
// single-process run of the same campaign would use (no workers,
// interrupt, or observer wired — callers add those).
func (s *Spec) SoakConfig() (litmus.SoakConfig, error) {
	mcms, err := s.parseMCMs()
	if err != nil {
		return litmus.SoakConfig{}, err
	}
	plans, err := s.namedPlans()
	if err != nil {
		return litmus.SoakConfig{}, err
	}
	cfg := litmus.SoakConfig{
		Tests:       s.Tests,
		Plans:       plans,
		Seeds:       s.Seeds,
		Iters:       s.Iters,
		Locals:      s.Locals,
		Global:      s.Global,
		MCMs:        mcms,
		TaskTimeout: time.Duration(s.TaskTimeoutMS) * time.Millisecond,
		Retries:     s.Retries,
	}
	if _, err := litmus.Campaigns(cfg); err != nil { // surfaces unknown tests
		return litmus.SoakConfig{}, err
	}
	return cfg, nil
}

// Job is one queued shard: a (test, plan, seed) cell plus its stable
// queue position. ID is the index into the canonical litmus.Campaigns
// order — the merge slot its result row lands in.
type Job struct {
	ID   int     `json:"id"`
	Test string  `json:"test"`
	Plan PlanRef `json:"plan"`
	Seed int64   `json:"seed"`
}

// Label renders the shard's stable identity ("MP/light/seed1") — the
// RowLabel the report, the checkpoint keys, and resume all share.
func (j Job) Label() string { return litmus.RowLabel(j.Test, j.Plan.Name, j.Seed) }

// Jobs expands the spec into the canonical shard list.
func (s *Spec) Jobs() ([]Job, error) {
	cfg, err := s.SoakConfig()
	if err != nil {
		return nil, err
	}
	camps, err := litmus.Campaigns(cfg)
	if err != nil {
		return nil, err
	}
	jobs := make([]Job, len(camps))
	for i, c := range camps {
		jobs[i] = Job{
			ID:   i,
			Test: c.Test.Name,
			Plan: PlanRef{Name: c.Plan.Name, Spec: c.Plan.Plan.String()},
			Seed: c.Seed,
		}
	}
	return jobs, nil
}

// RowSuffix renders the configuration-and-code fingerprint appended to
// every row checkpoint key — everything that shapes a row's bytes
// (protocols, MCMs, iteration count, code version) and nothing that
// cannot (worker counts, timeouts, observability). It must stay
// byte-compatible with the c3soak resume path: the coordinator journal
// and the single-process checkpoint ledger are the same file format,
// interchangeably resumable.
func RowSuffix(locals [2]string, global string, mcms [2]cpu.MCM, iters int) string {
	v := obs.Version()
	dirty := ""
	if v.Dirty {
		dirty = "+dirty"
	}
	return fmt.Sprintf("locals=%s,%s global=%s mcms=%s,%s iters=%d %s/%s%s",
		locals[0], locals[1], global, mcms[0], mcms[1],
		iters, v.Go, v.Revision, dirty)
}

// Suffix is the spec's own row-key fingerprint, computed with the
// running binary's version. A worker whose Suffix differs from the
// coordinator's is running different code (or a different toolchain)
// and its results must not merge.
func (s *Spec) Suffix() (string, error) {
	mcms, err := s.parseMCMs()
	if err != nil {
		return "", err
	}
	return RowSuffix(s.Locals, s.Global, mcms, s.Iters), nil
}

// RowKey is the content-addressed identity of one shard's result under
// suffix: the (spec, seed, code-version) cache key shared with c3soak's
// ledger checkpoints.
func (j Job) RowKey(suffix string) string { return j.Label() + "|" + suffix }
