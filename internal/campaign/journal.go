package campaign

import (
	"encoding/json"
	"fmt"
	"strings"

	"c3/internal/litmus"
	"c3/internal/obs"
)

// RowVerdict maps a completed soak row onto the ledger verdict
// vocabulary — shared by the c3soak checkpoint writer and the
// coordinator journal so the same row always records the same verdict.
func RowVerdict(row litmus.SoakRun) string {
	switch {
	case row.TimedOut:
		return obs.VerdictTimeout
	case row.Err != "":
		return obs.VerdictError
	case row.Forbidden > 0:
		return obs.VerdictFail
	}
	return obs.VerdictPass
}

// AppendRowRecord journals one completed shard row to the ledger at
// path as a c3-run/v1 row-checkpoint record — the exact format c3soak
// -resume replays, so coordinator journals and single-process
// checkpoint ledgers are interchangeable.
func AppendRowRecord(path, tool, rowKey string, row litmus.SoakRun) error {
	payload, err := json.Marshal(row)
	if err != nil {
		return fmt.Errorf("campaign: row marshal: %w", err)
	}
	return obs.AppendLedger(path, &obs.Record{
		Tool:    tool,
		RowKey:  rowKey,
		Row:     json.RawMessage(payload),
		Seeds:   []int64{row.Seed},
		Version: obs.Version(),
		Verdict: RowVerdict(row),
	})
}

// LoadCheckpoints replays the ledger at path and returns every
// completed row whose checkpoint-key suffix matches suffix, keyed by
// row label — the resume cache for both `c3soak -resume` and the
// coordinator's journal replay. Records from any tool qualify (a
// coordinator can finish a sweep c3soak started and vice versa); rows
// without a verdict (TIMEOUT/ERROR/INTERRUPTED) are left out so they
// re-run. The returned stats carry the torn/corrupt line count, which
// callers must surface (a resume that silently dropped records would
// claim rows re-ran for no reason).
func LoadCheckpoints(path, suffix string) (map[string]litmus.SoakRun, obs.LedgerStats, error) {
	recs, stats, err := obs.ReadLedgerLenient(path)
	if err != nil {
		return nil, stats, err
	}
	completed := make(map[string]litmus.SoakRun)
	for _, rec := range recs {
		if rec.RowKey == "" || len(rec.Row) == 0 {
			continue
		}
		label, recSuffix, ok := strings.Cut(rec.RowKey, "|")
		if !ok || recSuffix != suffix {
			continue
		}
		var row litmus.SoakRun
		if err := json.Unmarshal(rec.Row, &row); err != nil {
			stats.Skipped++
			stats.Warnings = append(stats.Warnings,
				fmt.Sprintf("campaign: ledger %s: skipping undecodable row %s: %v", path, rec.RowKey, err))
			continue
		}
		if row.Err != "" || row.Interrupted {
			continue // no verdict: re-run
		}
		completed[label] = row
	}
	return completed, stats, nil
}
