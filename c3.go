// Package c3 is a from-scratch Go reproduction of "C3: CXL Coherence
// Controllers for Heterogeneous Architectures" (HPCA 2026): a
// protocol-level discrete-event simulator for heterogeneous multi-host
// CXL systems built around the C3 compound coherence controller.
//
// The package offers four entry points:
//
//   - Simulation: NewSystem builds a multi-cluster machine (MESI, MOESI,
//     MESIF or RCC host protocols; TSO/weak/SC cores; CXL.mem or
//     hierarchical-MESI global protocol) on which workloads (RunWorkload)
//     or custom instruction sources (System.Raw + AttachSource) execute.
//
//   - Protocol synthesis: GenerateTable merges two SSP protocol specs
//     into the C3 compound translation table (the paper's Table II) and
//     reports its forbidden/reachable compound states.
//
//   - Correctness: RunLitmus executes randomized litmus campaigns
//     (Table IV) and Verify exhaustively model-checks small
//     configurations (the paper's Murphi methodology).
//
//   - Experiments: Fig9, Fig10, Fig11 and TableIV regenerate the
//     paper's evaluation artifacts; cmd/c3bench and bench_test.go drive
//     them.
//
// Everything is implemented in pure Go with the standard library only;
// the substrate packages live under internal/.
package c3

import (
	"fmt"

	"c3/internal/cpu"
	"c3/internal/gen"
	"c3/internal/ssp"
	"c3/internal/stats"
	"c3/internal/system"
	"c3/internal/workload"
)

// MCM names a memory consistency model: "arm" (weak), "tso", "sc".
type MCM = cpu.MCM

// Exported MCM values.
const (
	ARM = cpu.WMO
	TSO = cpu.TSO
	SC  = cpu.SC
)

// ParseMCM parses an MCM name ("arm"/"weak"/"wmo", "tso"/"x86", "sc");
// unknown names are an error, so command-line tools can reject typos
// instead of silently defaulting.
func ParseMCM(s string) (MCM, error) { return cpu.ParseMCM(s) }

// ValidLocalProtocol reports whether name is an embedded local protocol
// spec ("mesi", "moesi", "mesif", "rcc"; case-insensitive).
func ValidLocalProtocol(name string) bool { _, ok := ssp.Local(name); return ok }

// ValidGlobalProtocol reports whether name is an embedded global
// protocol spec ("cxl", "hmesi").
func ValidGlobalProtocol(name string) bool { _, ok := ssp.Global(name); return ok }

// Cluster describes one compute node of the machine.
type Cluster struct {
	// Protocol is the host coherence protocol: "mesi", "moesi",
	// "mesif", or "rcc".
	Protocol string
	// MCM is the cluster's memory consistency model.
	MCM MCM
	// Cores is the number of cores (each with a private 128 KiB cache).
	Cores int
}

// Config describes a machine in the paper's topology.
type Config struct {
	// Global selects the inter-cluster protocol: "cxl" (default) or
	// "hmesi" (the MESI-MESI-MESI baseline).
	Global   string
	Clusters []Cluster
	// Seed randomizes fabric jitter (runs are reproducible per seed).
	Seed int64
}

// System is an assembled machine.
type System struct {
	sys *system.System
}

// NewSystem builds a machine.
func NewSystem(cfg Config) (*System, error) {
	sc := system.Config{Global: cfg.Global, Seed: cfg.Seed}
	for _, cl := range cfg.Clusters {
		sc.Clusters = append(sc.Clusters, system.ClusterConfig{
			Protocol: cl.Protocol, MCM: cl.MCM, Cores: cl.Cores,
		})
	}
	s, err := system.New(sc)
	if err != nil {
		return nil, err
	}
	return &System{sys: s}, nil
}

// Proto reports the protocol combination in the paper's notation
// ("MESI-CXL-MOESI").
func (s *System) Proto() string { return s.sys.Proto() }

// Raw exposes the underlying system for advanced use (custom sources,
// direct stats access).
func (s *System) Raw() *system.System { return s.sys }

// RunWorkload executes one of the 33 paper kernels on a fresh two-cluster
// system and returns its datapoint.
func RunWorkload(name string, cfg WorkloadConfig) (stats.Run, error) {
	spec, ok := workload.ByName(name)
	if !ok {
		return stats.Run{}, fmt.Errorf("c3: unknown workload %q (see Workloads())", name)
	}
	return workload.Run(workload.RunConfig{
		Spec:            spec,
		Global:          cfg.Global,
		Locals:          cfg.Locals,
		MCMs:            cfg.MCMs,
		CoresPerCluster: cfg.CoresPerCluster,
		OpsScale:        cfg.OpsScale,
		Seed:            cfg.Seed,
		Hybrid:          cfg.Hybrid,
	})
}

// WorkloadConfig parameterizes RunWorkload.
type WorkloadConfig struct {
	Global          string    // "cxl" or "hmesi"
	Locals          [2]string // per-cluster protocols
	MCMs            [2]MCM
	CoresPerCluster int     // default 4
	OpsScale        float64 // multiplies the kernel's op budget
	Seed            int64
	// Hybrid homes per-core private data in cluster-local memory
	// (Sec. IV-D4); only shared data lives in the CXL pool.
	Hybrid bool
}

// Workloads lists the 33 kernel names (Splash-4, PARSEC, Phoenix).
func Workloads() []string { return workload.Names() }

// Table is a generated C3 compound translation table.
type Table = gen.Table

// GenerateTable merges the named local protocol ("mesi", "moesi",
// "mesif", "rcc") with the named global protocol ("cxl", "hmesi") into a
// C3 compound table, as the paper's generator tool does from SSP specs.
func GenerateTable(local, global string) (*Table, error) {
	ls, ok := ssp.Local(local)
	if !ok {
		return nil, fmt.Errorf("c3: unknown local protocol %q", local)
	}
	gs, ok := ssp.Global(global)
	if !ok {
		return nil, fmt.Errorf("c3: unknown global protocol %q", global)
	}
	return gen.Generate(ls, gs)
}

// LocalProtocols and GlobalProtocols list the embedded SSP specs.
func LocalProtocols() []string { return ssp.LocalNames() }

// GlobalProtocols lists the embedded global protocol specs.
func GlobalProtocols() []string { return ssp.GlobalNames() }
